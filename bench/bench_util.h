// Shared helpers for the figure/table reproduction benches.
//
// Every bench binary accepts the common flags of BenchArgs (see
// bench_framework/experiment.h). By default benches run at reduced,
// smoke-test scale so that `for b in build/bench/*; do $b; done` finishes in
// minutes; pass --full for paper-scale sweeps.
#ifndef GRAPHALIGN_BENCH_BENCH_UTIL_H_
#define GRAPHALIGN_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "align/aligner.h"
#include "align/sgwl.h"
#include "bench_framework/experiment.h"
#include "common/table.h"

namespace graphalign {
namespace bench {

// Prints the standard bench banner.
inline void Banner(const std::string& id, const std::string& what,
                   const BenchArgs& args) {
  std::printf("=== %s: %s ===\n", id.c_str(), what.c_str());
  std::printf("mode: %s (pass --full for paper-scale)\n",
              args.full ? "FULL" : "smoke");
}

// Instantiates an aligner; S-GWL gets the sparse-beta preset when requested
// (the paper tunes beta by density, §6.4.2).
inline std::unique_ptr<Aligner> MakeBenchAligner(const std::string& name,
                                                 bool sparse_graph = false) {
  if (name == "S-GWL" && sparse_graph) {
    return std::make_unique<SgwlAligner>(SgwlOptions::ForSparseGraphs());
  }
  auto aligner = MakeAligner(name);
  GA_CHECK_MSG(aligner.ok(), aligner.status().ToString());
  return *std::move(aligner);
}

// Emits the table and optional CSV.
inline void Emit(const Table& table, const BenchArgs& args) {
  table.Print(std::cout);
  if (!args.csv_path.empty()) {
    if (table.WriteCsv(args.csv_path)) {
      std::printf("csv written to %s\n", args.csv_path.c_str());
    } else {
      std::printf("FAILED to write csv %s\n", args.csv_path.c_str());
    }
  }
  std::printf("\n");
}

// Noise levels for the low-noise experiments (Figs 1-7).
inline std::vector<double> LowNoiseLevels(bool full) {
  if (full) return {0.00, 0.01, 0.02, 0.03, 0.04, 0.05};
  return {0.00, 0.02, 0.05};
}

// Noise levels for the high-noise experiments (Figs 8-9).
inline std::vector<double> HighNoiseLevels(bool full) {
  if (full) return {0.00, 0.05, 0.10, 0.15, 0.20, 0.25};
  return {0.00, 0.10, 0.25};
}

}  // namespace bench
}  // namespace graphalign

#endif  // GRAPHALIGN_BENCH_BENCH_UTIL_H_
