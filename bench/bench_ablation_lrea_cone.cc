// Ablations for the design knobs DESIGN.md calls out:
//  - LREA: rank cap and iteration count of the factored EigenAlign operator.
//  - CONE: embedding dimension (Table 1 says 512; the useful dimension is
//    far smaller and must stay well below n).
#include <string>

#include "align/cone.h"
#include "align/lrea.h"
#include "bench_util.h"
#include "common/random.h"
#include "graph/generators.h"

namespace graphalign {
namespace {

int Main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  bench::Banner("Ablation", "LREA rank/iterations and CONE dimension", args);
  const int n = args.full ? 1133 : 200;
  const int reps = args.repetitions > 0 ? args.repetitions : 3;
  Rng rng(args.seed);
  auto base = PowerlawCluster(n, 5, 0.5, &rng);
  GA_CHECK(base.ok());
  NoiseOptions clean;
  clean.level = 0.0;
  NoiseOptions noisy;
  noisy.level = 0.02;

  Table lrea_table({"rank", "iterations", "acc@0%", "acc@2%"});
  for (int rank : {2, 5, 10, 20}) {
    for (int iters : {4, 8, 16}) {
      LreaOptions opts;
      opts.max_rank = rank;
      opts.iterations = iters;
      LreaAligner lrea(opts);
      RunOutcome c = RunAveraged(&lrea, *base, clean,
                                 AssignmentMethod::kJonkerVolgenant, reps,
                                 args.seed, args);
      RunOutcome d = RunAveraged(&lrea, *base, noisy,
                                 AssignmentMethod::kJonkerVolgenant, reps,
                                 args.seed, args);
      lrea_table.AddRow({std::to_string(rank), std::to_string(iters),
                         FormatAccuracy(c), FormatAccuracy(d)});
    }
  }
  std::printf("-- LREA --\n");
  bench::Emit(lrea_table, args);

  Table cone_table({"dim", "acc@0%", "acc@2%", "similarity_s"});
  for (int dim : {8, 16, 32, 64, 128}) {
    ConeOptions opts;
    opts.dim = dim;
    ConeAligner cone(opts);
    RunOutcome c = RunAveraged(&cone, *base, clean,
                               AssignmentMethod::kJonkerVolgenant, reps,
                               args.seed, args);
    RunOutcome d = RunAveraged(&cone, *base, noisy,
                               AssignmentMethod::kJonkerVolgenant, reps,
                               args.seed, args);
    cone_table.AddRow({std::to_string(dim), FormatAccuracy(c),
                       FormatAccuracy(d),
                       FormatOutcome(d, d.similarity_seconds)});
  }
  std::printf("-- CONE --\n");
  bench::Emit(cone_table, args);
  return 0;
}

}  // namespace
}  // namespace graphalign

int main(int argc, char** argv) { return graphalign::Main(argc, argv); }
