#include "common/failpoint.h"

#include <signal.h>
#include <stdlib.h>

#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "common/random.h"

namespace graphalign {

namespace {

// Canonical site table: every injection site compiled into the tree, in
// subsystem order. KnownFailpoints() serves this list so the chaos suite and
// tools/run_chaos.sh can iterate all sites without first executing the code
// paths that register them lazily. Keep in sync with DESIGN.md §12.
const char* const kKnownSites[] = {
    "linalg.eigen.no-converge",    // Tql2: QL iteration fails (kNumerical).
    "linalg.lanczos.error",        // LanczosEigen entry (kNumerical).
    "linalg.svd.no-converge",      // Jacobi sweeps exhausted (kNumerical).
    "linalg.sinkhorn.underflow",   // Force the log-domain fallback path.
    "linalg.sinkhorn.strict",      // Re-enable the strict kernel rejection.
    "align.similarity.error",      // Aligner::ComputeSimilarity (transient).
    "align.similarity.nan",        // Poison the similarity matrix with NaN.
    "align.sparse.candidates.error",  // ComputeSparseSimilarity (transient).
    "assignment.extract.error",    // ExtractAlignment entry (transient).
    "assignment.sparse_lap.pop",   // SparseLapAssign Dijkstra pop loop.
    "graph.io.read.error",         // ReadEdgeList entry (transient).
    "subprocess.fork.error",       // RunIsolated before fork (transient).
    "subprocess.child.fault",      // Inside the isolated child, before body.
    "bench.cell.flaky",            // Bench harness, parent side of a cell.
    "server.request.error",        // Daemon request dispatch (transient).
    "server.worker.drop",          // Worker dies between dequeue and reply.
    "server.busy",                 // Admission control refuses the client.
    "server.cache.append.error",   // Cache-log append fails (IO error).
    "server.cache.append.torn",    // Crash mid-append: torn record on disk.
    "server.cache.replay.error",   // Cache-log open/replay fails (cold start).
    "store.write.error",           // GST1 temp-file write fails (IO error).
    "store.write.enospc",          // Disk full (ENOSPC) on the GST1 write:
                                   // must classify kUnavailable, never
                                   // kCorrupt / quarantine.
    "store.fsync.error",           // fsync of the temp file fails.
    "store.rename.error",          // Crash window: temp written, not renamed.
    "store.mmap.error",            // mmap of a .gst file fails (transient).
    "store.verify.corrupt",        // Force CRC verification failure on open.
    "server.cache.append.enospc",  // Disk full on a cache-log append: the
                                   // record is dropped and counted, the
                                   // in-memory cache keeps serving.
    "jobs.journal.append.error",   // Job-journal append fails (IO error).
    "jobs.journal.append.torn",    // Crash mid-append: torn journal record.
    "jobs.journal.replay.error",   // Journal open/replay fails entirely.
    "jobs.exec.delay",             // Stall the job runner before executing
                                   // (holds a job in RUNNING for kill tests).
};

uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

enum class Mode { kError, kOnce, kProb, kNan, kDelay, kCrash, kOom };

}  // namespace

// Armed configuration; read and mutated only under the registry mutex.
struct Failpoint::Armed {
  Mode mode = Mode::kError;
  double arg = 0.0;        // delay-ms: milliseconds; prob: probability.
  Rng rng{0};              // prob mode; seeded deterministically at arm time.
  std::string spec;        // As given, for ArmedFailpoints().
};

// Registry of all sites. Sites are never destroyed (chaos code may hold
// references across deactivation), so the map owns them for process life.
class FailpointRegistry {
 public:
  static FailpointRegistry& Instance() {
    static FailpointRegistry* instance = new FailpointRegistry();
    return *instance;
  }

  Failpoint& Get(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    return GetLocked(name);
  }

  Status Activate(const std::string& name, const std::string& spec) {
    auto armed = ParseSpec(name, spec);
    if (!armed.ok()) return armed.status();
    std::lock_guard<std::mutex> lock(mu_);
    Failpoint& fp = GetLocked(name);
    fp.state_ = std::move(armed).value();
    fp.armed_.store(true, std::memory_order_relaxed);
    return Status::Ok();
  }

  void Deactivate(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sites_.find(name);
    if (it == sites_.end()) return;
    it->second->armed_.store(false, std::memory_order_relaxed);
    it->second->state_.reset();
    it->second->hits_.store(0, std::memory_order_relaxed);
  }

  void DeactivateAll() {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, fp] : sites_) {
      fp->armed_.store(false, std::memory_order_relaxed);
      fp->state_.reset();
      fp->hits_.store(0, std::memory_order_relaxed);
    }
  }

  std::vector<std::string> Armed() {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> out;
    for (const char* name : kKnownSites) {
      auto it = sites_.find(name);
      if (it != sites_.end() && it->second->state_ != nullptr) {
        out.push_back(std::string(name) + "=" + it->second->state_->spec);
      }
    }
    // Ad-hoc (test-only) sites not in the canonical table.
    for (auto& [name, fp] : sites_) {
      if (fp->state_ == nullptr) continue;
      bool known = false;
      for (const char* k : kKnownSites) known = known || name == k;
      if (!known) out.push_back(name + "=" + fp->state_->spec);
    }
    return out;
  }

  std::mutex& mu() { return mu_; }

 private:
  FailpointRegistry() {
    // Environment activation happens exactly once, before any site can be
    // consulted (every path into a site goes through Get → Instance).
    const char* env = getenv("GRAPHALIGN_FAILPOINTS");
    if (env != nullptr && env[0] != '\0') {
      Status s = ActivateListLocked(env);
      if (!s.ok()) {
        // A malformed env spec must not be silently ignored (the operator
        // believes faults are armed) nor crash production; report and exit
        // usage-style like malformed flags do.
        std::fprintf(stderr, "GRAPHALIGN_FAILPOINTS: %s\n",
                     s.ToString().c_str());
        std::exit(2);
      }
    }
  }

  Status ActivateListLocked(const std::string& list) {
    size_t start = 0;
    while (start < list.size()) {
      size_t end = list.find_first_of(";,", start);
      if (end == std::string::npos) end = list.size();
      const std::string entry = list.substr(start, end - start);
      start = end + 1;
      if (entry.empty()) continue;
      const size_t eq = entry.find('=');
      if (eq == std::string::npos || eq == 0) {
        return Status::InvalidArgument("expected site=mode[:arg], got '" +
                                       entry + "'");
      }
      const std::string name = entry.substr(0, eq);
      const std::string spec = entry.substr(eq + 1);
      auto armed = ParseSpec(name, spec);
      if (!armed.ok()) return armed.status();
      Failpoint& fp = GetLocked(name);
      fp.state_ = std::move(armed).value();
      fp.armed_.store(true, std::memory_order_relaxed);
    }
    return Status::Ok();
  }

  Failpoint& GetLocked(const std::string& name) {
    auto it = sites_.find(name);
    if (it == sites_.end()) {
      it = sites_.emplace(name, std::unique_ptr<Failpoint>(
                                    new Failpoint(name))).first;
    }
    return *it->second;
  }

  static Result<std::unique_ptr<Failpoint::Armed>> ParseSpec(
      const std::string& name, const std::string& spec) {
    std::string mode = spec;
    std::string arg;
    const size_t colon = spec.find(':');
    if (colon != std::string::npos) {
      mode = spec.substr(0, colon);
      arg = spec.substr(colon + 1);
    }
    auto armed = std::make_unique<Failpoint::Armed>();
    armed->spec = spec;
    if (mode == "error") {
      armed->mode = Mode::kError;
    } else if (mode == "once") {
      armed->mode = Mode::kOnce;
    } else if (mode == "nan") {
      armed->mode = Mode::kNan;
    } else if (mode == "crash") {
      armed->mode = Mode::kCrash;
    } else if (mode == "oom") {
      armed->mode = Mode::kOom;
    } else if (mode == "delay-ms") {
      char* end = nullptr;
      armed->arg = std::strtod(arg.c_str(), &end);
      if (arg.empty() || end == nullptr || *end != '\0' || armed->arg < 0.0) {
        return Status::InvalidArgument(
            "failpoint " + name + ": delay-ms needs a non-negative "
            "millisecond argument, got '" + arg + "'");
      }
      armed->mode = Mode::kDelay;
    } else if (mode == "prob") {
      char* end = nullptr;
      armed->arg = std::strtod(arg.c_str(), &end);
      if (arg.empty() || end == nullptr || *end != '\0' || armed->arg < 0.0 ||
          armed->arg > 1.0) {
        return Status::InvalidArgument(
            "failpoint " + name + ": prob needs a probability in [0,1], "
            "got '" + arg + "'");
      }
      armed->mode = Mode::kProb;
      uint64_t seed = 2023;
      const char* env_seed = getenv("GRAPHALIGN_FAILPOINT_SEED");
      if (env_seed != nullptr && env_seed[0] != '\0') {
        seed = std::strtoull(env_seed, nullptr, 10);
      }
      armed->rng = Rng(seed ^ Fnv1a(name));
    } else {
      return Status::InvalidArgument(
          "failpoint " + name + ": unknown mode '" + mode +
          "' (expected error|once|prob:P|nan|delay-ms:N|crash|oom)");
    }
    return armed;
  }

  std::mutex mu_;
  std::map<std::string, std::unique_ptr<Failpoint>> sites_;
};

namespace {

// Allocate-and-touch until the memory cap (or the OOM killer) ends the
// process; mirrors the _OOM fault aligner so the subprocess classifier sees
// the same signature.
[[noreturn]] void ExhaustMemory() {
  std::vector<std::unique_ptr<char[]>> hog;
  constexpr size_t kChunk = 64 << 20;
  for (;;) {
    hog.push_back(std::make_unique<char[]>(kChunk));
    for (size_t off = 0; off < kChunk; off += 4096) {
      hog.back()[off] = static_cast<char>(off);
    }
    if (hog.size() > 64) {  // ~4 GB safety net when run without a limit.
      std::fprintf(stderr,
                   "failpoint oom: survived 4 GB appetite (no mem limit?)\n");
      std::abort();
    }
  }
}

}  // namespace

Failpoint::Failpoint(std::string name) : name_(std::move(name)) {}

Failpoint::~Failpoint() = default;

Failpoint& Failpoint::Get(const std::string& name) {
  return FailpointRegistry::Instance().Get(name);
}

int64_t Failpoint::hits() const {
  return hits_.load(std::memory_order_relaxed);
}

Status Failpoint::Fire(const Status& natural_error) {
  double delay_ms = -1.0;
  {
    std::lock_guard<std::mutex> lock(FailpointRegistry::Instance().mu());
    if (state_ == nullptr) return Status::Ok();  // Lost a disarm race.
    switch (state_->mode) {
      case Mode::kError:
      case Mode::kNan:  // A status-only site has no value to poison.
        hits_.fetch_add(1, std::memory_order_relaxed);
        return natural_error;
      case Mode::kOnce:
        hits_.fetch_add(1, std::memory_order_relaxed);
        armed_.store(false, std::memory_order_relaxed);
        state_.reset();
        return natural_error;
      case Mode::kProb:
        if (state_->rng.Bernoulli(state_->arg)) {
          hits_.fetch_add(1, std::memory_order_relaxed);
          return natural_error;
        }
        return Status::Ok();
      case Mode::kDelay:
        hits_.fetch_add(1, std::memory_order_relaxed);
        delay_ms = state_->arg;
        break;  // Sleep outside the lock.
      case Mode::kCrash:
        hits_.fetch_add(1, std::memory_order_relaxed);
        raise(SIGSEGV);
        std::abort();  // If SIGSEGV is blocked/ignored, still die loudly.
      case Mode::kOom:
        hits_.fetch_add(1, std::memory_order_relaxed);
        ExhaustMemory();
    }
  }
  if (delay_ms >= 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(delay_ms));
  }
  return Status::Ok();
}

bool Failpoint::FireBool() {
  double delay_ms = -1.0;
  {
    std::lock_guard<std::mutex> lock(FailpointRegistry::Instance().mu());
    if (state_ == nullptr) return false;
    switch (state_->mode) {
      case Mode::kError:
      case Mode::kNan:
        hits_.fetch_add(1, std::memory_order_relaxed);
        return true;
      case Mode::kOnce:
        hits_.fetch_add(1, std::memory_order_relaxed);
        armed_.store(false, std::memory_order_relaxed);
        state_.reset();
        return true;
      case Mode::kProb:
        if (state_->rng.Bernoulli(state_->arg)) {
          hits_.fetch_add(1, std::memory_order_relaxed);
          return true;
        }
        return false;
      case Mode::kDelay:
        hits_.fetch_add(1, std::memory_order_relaxed);
        delay_ms = state_->arg;
        break;
      case Mode::kCrash:
        hits_.fetch_add(1, std::memory_order_relaxed);
        raise(SIGSEGV);
        std::abort();
      case Mode::kOom:
        hits_.fetch_add(1, std::memory_order_relaxed);
        ExhaustMemory();
    }
  }
  if (delay_ms >= 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(delay_ms));
  }
  return false;
}

Status ActivateFailpoint(const std::string& name, const std::string& spec) {
  return FailpointRegistry::Instance().Activate(name, spec);
}

Status ActivateFailpointsFromSpec(const std::string& spec) {
  size_t start = 0;
  while (start < spec.size()) {
    size_t end = spec.find_first_of(";,", start);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(start, end - start);
    start = end + 1;
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("expected site=mode[:arg], got '" +
                                     entry + "'");
    }
    GA_RETURN_IF_ERROR(
        ActivateFailpoint(entry.substr(0, eq), entry.substr(eq + 1)));
  }
  return Status::Ok();
}

void DeactivateFailpoint(const std::string& name) {
  FailpointRegistry::Instance().Deactivate(name);
}

void DeactivateAllFailpoints() { FailpointRegistry::Instance().DeactivateAll(); }

std::vector<std::string> KnownFailpoints() {
  std::vector<std::string> out;
  for (const char* name : kKnownSites) out.emplace_back(name);
  return out;
}

std::vector<std::string> ArmedFailpoints() {
  return FailpointRegistry::Instance().Armed();
}

}  // namespace graphalign
