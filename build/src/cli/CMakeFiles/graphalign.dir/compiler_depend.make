# Empty compiler generated dependencies file for graphalign.
# This may be replaced when dependencies are built.
