// Durable backing log for the result cache (DESIGN.md §14).
//
// The in-memory ResultCache evaporates on every daemon restart, which turns
// a routine deploy into a cold-start stampede of recomputed alignments. The
// CacheStore persists completed entries to an append-only log so a restart
// replays them and comes up warm.
//
// Record layout (all integers little-endian):
//
//   "GAR1" (4-byte magic) | u32 payload_len | u32 crc32c(payload) | payload
//
// where payload = u64 cache key | encoded AlignResult bytes. The log is
// append-only while serving — records are never rewritten in place — so the
// only failure modes a crash can leave behind are a torn record at the tail
// (partial header or body) or, with bit rot, a record whose CRC no longer
// matches. Growth is bounded by startup compaction (Compact, behind
// `serve --cache-compact-mb`): live records are rewritten to a fresh log
// and published atomically, so a crash mid-compaction costs nothing.
//
// Replay rules, in order, at every record boundary:
//   * clean EOF                       -> done
//   * partial header / partial body /
//     bad magic / absurd length       -> torn or corrupt tail: truncate the
//                                        file back to the last good record
//                                        and stop (a crash mid-append wrote
//                                        it; nothing after it is sound)
//   * CRC mismatch on a record whose
//     framing is intact               -> skip just that record and continue
//                                        (bit rot is local; later records
//                                        framed correctly are independent)
//
// Replay therefore never fails the daemon: the worst corrupt log yields a
// cold (empty) cache, not a crash. Append failures are counted and the
// in-memory cache keeps serving; durability degrades, service does not.
//
// Failpoints in the write path (tools/run_chaos.sh arms them):
//   server.cache.append.error  - the append is dropped as if write() failed
//   server.cache.append.enospc - the append is dropped as if the disk were
//                                full (ENOSPC): counted, never corruption
//   server.cache.append.torn   - a deliberately truncated record is written,
//                                simulating a crash mid-append
//   server.cache.replay.error  - Open() fails, simulating an unreadable log
#ifndef GRAPHALIGN_SERVER_CACHE_STORE_H_
#define GRAPHALIGN_SERVER_CACHE_STORE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace graphalign {

class CacheStore {
 public:
  struct ReplayStats {
    uint64_t replayed = 0;         // Records delivered to the callback.
    uint64_t crc_skipped = 0;      // Intact-framing records with a bad CRC.
    uint64_t truncated_bytes = 0;  // Torn/corrupt tail bytes dropped.
  };

  // Opens (creating if needed) `dir`/cache.log, replays every good record
  // through `on_record`, truncates any torn tail, and returns a store ready
  // for appends. `stats` (optional) receives the replay accounting. Fails
  // only when the directory/file cannot be created or read at all — never
  // because of log content.
  static Result<std::unique_ptr<CacheStore>> Open(
      const std::string& dir,
      const std::function<void(uint64_t key, std::string value)>& on_record,
      ReplayStats* stats = nullptr);

  ~CacheStore();
  CacheStore(const CacheStore&) = delete;
  CacheStore& operator=(const CacheStore&) = delete;

  // Appends one record. Thread-safe. Failures are absorbed: the error is
  // counted (append_errors) and the caller's in-memory cache is unaffected.
  void Append(uint64_t key, const std::string& value);

  // Rewrites the log to hold exactly `live` records, in order, dropping
  // everything else (superseded values, CRC-skipped residue). The new log
  // is published atomically — records are written to `cache.log.tmp`,
  // fsynced, renamed over `cache.log`, and the directory fsynced — so a
  // crash mid-compaction leaves the old log fully intact. On success the
  // append fd switches to the new file; on failure the old log and fd keep
  // working unchanged. Thread-safe against Append.
  Status Compact(const std::vector<std::pair<uint64_t, std::string>>& live);

  // fsyncs the log fd: appends are buffered writes, so this is the seal a
  // graceful (SIGTERM) drain applies before exit to make every record that
  // reached the kernel durable.
  Status Sync();

  // Current byte size of the log on disk (0 if the store is unusable).
  uint64_t log_bytes() const;

  uint64_t append_errors() const;
  const std::string& path() const { return path_; }

 private:
  CacheStore(int fd, std::string path);

  const std::string path_;
  mutable std::mutex mu_;
  int fd_ = -1;
  uint64_t append_errors_ = 0;
};

}  // namespace graphalign

#endif  // GRAPHALIGN_SERVER_CACHE_STORE_H_
