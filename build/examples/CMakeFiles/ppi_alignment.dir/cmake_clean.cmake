file(REMOVE_RECURSE
  "CMakeFiles/ppi_alignment.dir/ppi_alignment.cc.o"
  "CMakeFiles/ppi_alignment.dir/ppi_alignment.cc.o.d"
  "ppi_alignment"
  "ppi_alignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppi_alignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
