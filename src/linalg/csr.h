// Compressed sparse row matrix: the workhorse representation for adjacency
// and random-walk operators in the alignment algorithms.
#ifndef GRAPHALIGN_LINALG_CSR_H_
#define GRAPHALIGN_LINALG_CSR_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "linalg/dense.h"

namespace graphalign {

struct Triplet {
  int row;
  int col;
  double value;
};

class CsrMatrix {
 public:
  CsrMatrix() : rows_(0), cols_(0) { row_ptr_.push_back(0); }

  // Builds from (row, col, value) triplets; duplicate entries are summed.
  static CsrMatrix FromTriplets(int rows, int cols,
                                std::vector<Triplet> triplets);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(col_idx_.size()); }

  const std::vector<int64_t>& row_ptr() const { return row_ptr_; }
  const std::vector<int>& col_idx() const { return col_idx_; }
  const std::vector<double>& values() const { return values_; }
  std::vector<double>* mutable_values() { return &values_; }

  // y = this * x.
  std::vector<double> Multiply(const std::vector<double>& x) const;
  // y = this^T * x.
  std::vector<double> MultiplyTransposed(const std::vector<double>& x) const;
  // C = this * B (dense).
  DenseMatrix Multiply(const DenseMatrix& b) const;
  // C = this^T * B (dense).
  DenseMatrix MultiplyTransposed(const DenseMatrix& b) const;

  // C = X * this (dense-times-sparse from the right).
  DenseMatrix RightMultiplied(const DenseMatrix& x) const;

  CsrMatrix Transposed() const;
  // Per-row sum of values (weighted out-degree).
  std::vector<double> RowSums() const;
  // Returns a copy with every row scaled by scale[row].
  CsrMatrix ScaleRows(const std::vector<double>& scale) const;
  // Densifies (test/debug helper; O(rows*cols) memory).
  DenseMatrix ToDense() const;

 private:
  int rows_;
  int cols_;
  std::vector<int64_t> row_ptr_;
  std::vector<int> col_idx_;
  std::vector<double> values_;
};

}  // namespace graphalign

#endif  // GRAPHALIGN_LINALG_CSR_H_
