// Status and Result<T>: exception-free error handling in the style of
// Arrow/RocksDB. Every fallible public API in graphalign returns either a
// Status or a Result<T>.
#ifndef GRAPHALIGN_COMMON_STATUS_H_
#define GRAPHALIGN_COMMON_STATUS_H_

#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>
#include <variant>

namespace graphalign {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kFailedPrecondition,
  kNotFound,
  kResourceExhausted,
  kInternal,
  kNotImplemented,
  kDeadlineExceeded,
  // A numerical routine failed in a recoverable way (QL iteration did not
  // converge, Jacobi sweeps exhausted, Sinkhorn scaling underflowed). The
  // degradation layer treats these as "fall back", not "bug": callers can
  // sanitize and continue where kInternal means the code itself is broken.
  kNumerical,
  // A transient condition (injected fault, service BUSY, connect refused)
  // that a retry with backoff may clear. Never used for permanent errors.
  kUnavailable,
  // On-disk data failed integrity verification (bad magic, CRC mismatch,
  // inconsistent CSR structure). Distinct from kInternal: the code is fine,
  // the bytes are not — callers quarantine the file and degrade rather than
  // retrying in place.
  kCorrupt,
};

// Human-readable name of a status code, e.g. "InvalidArgument".
const char* StatusCodeName(StatusCode code);

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Numerical(std::string msg) {
    return Status(StatusCode::kNumerical, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Corrupt(std::string msg) {
    return Status(StatusCode::kCorrupt, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// Result<T> holds either a value or an error Status. Accessing the value of
// an errored Result aborts; call ok() first or use GA_ASSIGN_OR_RETURN.
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work.
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status)                            // NOLINT(runtime/explicit)
      : payload_(std::move(status)) {
    if (std::get<Status>(payload_).ok()) {
      std::cerr << "Result constructed from OK status\n";
      std::abort();
    }
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(payload_);
  }

  const T& value() const& {
    CheckOk();
    return std::get<T>(payload_);
  }
  T& value() & {
    CheckOk();
    return std::get<T>(payload_);
  }
  T&& value() && {
    CheckOk();
    return std::get<T>(std::move(payload_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::cerr << "Result::value() on error: " << status().ToString() << "\n";
      std::abort();
    }
  }

  std::variant<T, Status> payload_;
};

// Propagates an error Status from an expression that yields a Status.
#define GA_RETURN_IF_ERROR(expr)                 \
  do {                                           \
    ::graphalign::Status ga_status__ = (expr);   \
    if (!ga_status__.ok()) return ga_status__;   \
  } while (false)

#define GA_CONCAT_IMPL(a, b) a##b
#define GA_CONCAT(a, b) GA_CONCAT_IMPL(a, b)

// Evaluates `rexpr` (a Result<T>), propagating errors; on success binds the
// value to `lhs`. Usage: GA_ASSIGN_OR_RETURN(auto g, LoadGraph(path));
#define GA_ASSIGN_OR_RETURN(lhs, rexpr)                         \
  GA_ASSIGN_OR_RETURN_IMPL(GA_CONCAT(ga_result__, __LINE__), lhs, rexpr)

#define GA_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                             \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value()

// CHECK-style invariant enforcement for programmer errors (not user input).
#define GA_CHECK(cond)                                                     \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::cerr << "GA_CHECK failed at " << __FILE__ << ":" << __LINE__    \
                << ": " #cond "\n";                                        \
      std::abort();                                                        \
    }                                                                      \
  } while (false)

#define GA_CHECK_MSG(cond, msg)                                            \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::cerr << "GA_CHECK failed at " << __FILE__ << ":" << __LINE__    \
                << ": " #cond " — " << (msg) << "\n";                      \
      std::abort();                                                        \
    }                                                                      \
  } while (false)

}  // namespace graphalign

#endif  // GRAPHALIGN_COMMON_STATUS_H_
