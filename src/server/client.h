// Client library for the alignment service daemon.
//
// Wraps a connected socket and the request/response codec so callers
// (the `graphalign submit` subcommand, tests, tools, and the bench harness)
// drive the daemon with typed structs instead of raw frames. A Client holds
// one connection; Call() performs one request/response round trip and the
// connection can be reused for a sequence of calls.
#ifndef GRAPHALIGN_SERVER_CLIENT_H_
#define GRAPHALIGN_SERVER_CLIENT_H_

#include <string>

#include "common/retry.h"
#include "common/status.h"
#include "server/protocol.h"

namespace graphalign {

struct ClientOptions {
  // Exactly one transport, mirroring ServerOptions: a Unix socket path, or
  // a TCP port on `host` (numeric address, default loopback).
  std::string socket_path;
  std::string host = "127.0.0.1";
  int port = -1;

  // Socket send/receive timeout. Calls whose isolated alignment legitimately
  // runs longer need a larger value; a BUSY or cached response arrives in
  // microseconds regardless.
  double timeout_seconds = 60.0;
};

class Client {
 public:
  static Result<Client> Connect(const ClientOptions& options);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  // One request/response round trip. A Status means transport or protocol
  // failure; a server-side outcome (including BUSY/DNF/CRASH/OOM) is a
  // normal Response with the corresponding code.
  Result<Response> Call(const Request& request);

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_ = -1;
};

// One logical request with transient-failure handling (common/retry.h):
// reconnects and retries, with the policy's jittered backoff, on transport
// errors (connect refused while the daemon is still binding, a connection
// dropped mid-flight) and on typed BUSY / SHUTTING_DOWN responses. When a
// transient response carries a server-side backoff hint
// (Response::retry_after_ms), that hint replaces the jittered delay for the
// following attempt. Every
// other response — including DNF/CRASH/OOM, which re-running would only
// reproduce at full cost — is returned as-is from the first attempt that
// produced it. Each attempt uses a fresh connection.
Result<Response> CallWithRetry(const ClientOptions& options,
                               const Request& request,
                               const RetryPolicy& policy = {});

}  // namespace graphalign

#endif  // GRAPHALIGN_SERVER_CLIENT_H_
