// Random graph generators used by the paper's synthetic experiments (§5.1.2)
// and scalability sweeps (§6.6): Erdős–Rényi, Barabási–Albert,
// Watts–Strogatz, Newman–Watts, powerlaw-cluster (Holme–Kim), and the
// configuration model, plus degree-sequence helpers and a random geometric
// model used for infrastructure-network stand-ins.
#ifndef GRAPHALIGN_GRAPH_GENERATORS_H_
#define GRAPHALIGN_GRAPH_GENERATORS_H_

#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "graph/graph.h"

namespace graphalign {

// G(n, p): each of the C(n,2) edges present independently with probability p.
// Uses geometric skipping, O(n + m) expected time.
Result<Graph> ErdosRenyi(int n, double p, Rng* rng);

// Barabási–Albert preferential attachment: each new node attaches to m
// existing nodes with probability proportional to degree.
Result<Graph> BarabasiAlbert(int n, int m, Rng* rng);

// Watts–Strogatz small world: ring lattice with k neighbors per node
// (k even), each edge rewired with probability p.
Result<Graph> WattsStrogatz(int n, int k, double p, Rng* rng);

// Newman–Watts: ring lattice with k neighbors; for each lattice edge a
// shortcut is added with probability p (no edges removed).
Result<Graph> NewmanWatts(int n, int k, double p, Rng* rng);

// Holme–Kim powerlaw cluster model: BA with probability p of closing a
// triangle after each preferential attachment step.
Result<Graph> PowerlawCluster(int n, int m, double p, Rng* rng);

// Erased configuration model: random multigraph by stub matching with the
// prescribed degree sequence, then self-loops/multi-edges removed.
Result<Graph> ConfigurationModel(const std::vector<int>& degrees, Rng* rng);

// Random geometric graph on the unit square: nodes connect within `radius`.
// Stand-in family for road/power infrastructure networks.
Result<Graph> RandomGeometric(int n, double radius, Rng* rng);

// Degree sequence with approximately normal distribution, clamped to
// [1, n-1], sum made even. Used for the configuration-model scalability
// graphs ("normal degree distribution", §6.6).
std::vector<int> NormalDegreeSequence(int n, double mean, double stddev,
                                      Rng* rng);

// Degree sequence sampled from a power law with exponent gamma >= 2 and
// minimum degree kmin, clamped to n-1, sum made even.
std::vector<int> PowerLawDegreeSequence(int n, double gamma, int kmin,
                                        Rng* rng);

// The subgraph induced by the largest connected component. `old_to_new`
// (optional) receives the node mapping (-1 for dropped nodes).
Graph LargestComponentSubgraph(const Graph& g,
                               std::vector<int>* old_to_new = nullptr);

}  // namespace graphalign

#endif  // GRAPHALIGN_GRAPH_GENERATORS_H_
