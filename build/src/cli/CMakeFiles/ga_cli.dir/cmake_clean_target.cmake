file(REMOVE_RECURSE
  "libga_cli.a"
)
