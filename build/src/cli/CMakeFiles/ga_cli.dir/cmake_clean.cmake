file(REMOVE_RECURSE
  "CMakeFiles/ga_cli.dir/cli.cc.o"
  "CMakeFiles/ga_cli.dir/cli.cc.o.d"
  "libga_cli.a"
  "libga_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ga_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
