// REGAL / xNetMF (Heimann et al. 2018), paper §3.5: structural embeddings
// from discounted k-hop degree histograms in logarithmic buckets (Eq. 8),
// Nystrom low-rank factorization of the cross-network similarity through
// p = 10 log2(n) landmarks, and nearest-neighbor extraction (Eq. 10).
// Attributes are disabled (gamma_attr = 0) per the paper's setup.
#ifndef GRAPHALIGN_ALIGN_REGAL_H_
#define GRAPHALIGN_ALIGN_REGAL_H_

#include <cstdint>
#include <string>

#include "align/aligner.h"

namespace graphalign {

struct RegalOptions {
  int max_hops = 2;          // K in Eq. 8 (Table 1: k=2).
  double discount = 0.1;     // delta in Eq. 8.
  double gamma_struc = 1.0;  // gamma_s in Eq. 9.
  int landmark_factor = 10;  // p = landmark_factor * log2(n) (Table 1).
  uint64_t seed = 42;        // Landmark sampling.
};

class RegalAligner : public Aligner {
 public:
  explicit RegalAligner(const RegalOptions& options = {})
      : options_(options) {}

  std::string name() const override { return "REGAL"; }
  AssignmentMethod default_assignment() const override {
    return AssignmentMethod::kNearestNeighbor;  // As proposed (Table 1).
  }
  // The xNetMF embeddings themselves (n1+n2 rows); exposed for the k-d-tree
  // native extraction and for tests.
  Result<DenseMatrix> ComputeEmbeddings(const Graph& g1, const Graph& g2,
                                        const Deadline& deadline = Deadline());

  // Candidate (u, v) scores as exp(-||y_u - y_{n1+v}||^2) straight from the
  // embedding rows (Eq. 10): O(candidates * p), no dense matrix.
  SparseSimilarityMode sparse_similarity_mode() const override {
    return SparseSimilarityMode::kNative;
  }

 protected:
  Result<DenseMatrix> ComputeSimilarityImpl(const Graph& g1, const Graph& g2,
                                            const Deadline& deadline) override;

  // Native extraction: k-d tree nearest neighbor over target embeddings.
  Result<Alignment> AlignNativeImpl(const Graph& g1, const Graph& g2,
                                    const Deadline& deadline) override;

  Status ScoreSparseCandidatesImpl(
      const Graph& g1, const Graph& g2, const Deadline& deadline,
      std::vector<SparseCandidate>* candidates) override;

 private:
  RegalOptions options_;
};

}  // namespace graphalign

#endif  // GRAPHALIGN_ALIGN_REGAL_H_
