# Empty compiler generated dependencies file for bench_fig06_pl.
# This may be replaced when dependencies are built.
