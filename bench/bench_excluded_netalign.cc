// Reproduction of the paper's §4 exclusion decision: NetAlign, even with the
// enhancements granted to the included algorithms (the degree-similarity
// notion of §6.1 and JV assignment of §6.2), delivers inadequate quality
// relative to the nine study algorithms.
#include <string>

#include "align/netalign.h"
#include "bench_util.h"
#include "common/random.h"
#include "graph/generators.h"
#include "metrics/metrics.h"

namespace graphalign {
namespace {

int Main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  bench::Banner("Excluded (§4)",
                "NetAlign (enhanced) vs the included algorithms", args);
  const int n = args.full ? 1133 : 170;
  const int reps = args.repetitions > 0 ? args.repetitions : 2;
  Rng rng(args.seed);
  auto base = PowerlawCluster(n, 5, 0.5, &rng);
  GA_CHECK(base.ok());

  Table t({"algorithm", "noise", "accuracy"});
  // NetAlign with its native sparse extraction.
  {
    NetAlignAligner netalign;
    for (double level : bench::LowNoiseLevels(args.full)) {
      NoiseOptions noise;
      noise.level = level;
      Rng nrng(args.seed + static_cast<uint64_t>(level * 1000));
      double acc = 0.0;
      int done = 0;
      for (int r = 0; r < reps; ++r) {
        Rng irng = nrng.Fork();
        auto prob = MakeAlignmentProblem(*base, noise, &irng);
        if (!prob.ok()) continue;
        auto align = netalign.AlignNative(prob->g1, prob->g2);
        if (!align.ok()) continue;
        acc += Accuracy(*align, prob->ground_truth);
        ++done;
      }
      t.AddRow({"NetAlign", Table::Num(level, 2),
                done > 0 ? Table::Num(acc / done) : "ERR"});
    }
  }
  // A representative subset of the included nine for contrast.
  for (const std::string& name : {"IsoRank", "CONE", "GWL"}) {
    auto aligner = bench::MakeBenchAligner(name, true);
    for (double level : bench::LowNoiseLevels(args.full)) {
      NoiseOptions noise;
      noise.level = level;
      RunOutcome out = RunAveraged(
          aligner.get(), *base, noise, AssignmentMethod::kJonkerVolgenant,
          reps, args.seed + static_cast<uint64_t>(level * 1000), args);
      t.AddRow({name, Table::Num(level, 2), FormatAccuracy(out)});
    }
  }
  bench::Emit(t, args);
  return 0;
}

}  // namespace
}  // namespace graphalign

int main(int argc, char** argv) { return graphalign::Main(argc, argv); }
