#include "linalg/kdtree.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace graphalign {

KdTree::KdTree(const DenseMatrix& points) : points_(points) {
  const int n = points_.rows();
  if (n == 0) return;
  std::vector<int> indices(n);
  std::iota(indices.begin(), indices.end(), 0);
  nodes_.reserve(n);
  root_ = Build(&indices, 0, n, 0);
}

int KdTree::Build(std::vector<int>* indices, int lo, int hi, int depth) {
  if (lo >= hi) return -1;
  const int axis = points_.cols() > 0 ? depth % points_.cols() : 0;
  const int mid = (lo + hi) / 2;
  std::nth_element(indices->begin() + lo, indices->begin() + mid,
                   indices->begin() + hi, [&](int a, int b) {
                     return points_(a, axis) < points_(b, axis);
                   });
  const int node_id = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{});
  nodes_[node_id].point = (*indices)[mid];
  nodes_[node_id].axis = axis;
  const int left = Build(indices, lo, mid, depth + 1);
  const int right = Build(indices, mid + 1, hi, depth + 1);
  nodes_[node_id].left = left;
  nodes_[node_id].right = right;
  return node_id;
}

double KdTree::SquaredDistance(int row, const double* query) const {
  const double* p = points_.Row(row);
  double s = 0.0;
  for (int j = 0; j < points_.cols(); ++j) {
    const double d = p[j] - query[j];
    s += d * d;
  }
  return s;
}

void KdTree::Search(int node_id, const double* query, int k,
                    std::vector<Neighbor>* heap) const {
  if (node_id < 0) return;
  const Node& node = nodes_[node_id];
  const double d2 = SquaredDistance(node.point, query);

  auto worse = [](const Neighbor& a, const Neighbor& b) {
    return a.distance < b.distance;  // Max-heap on distance.
  };
  if (static_cast<int>(heap->size()) < k) {
    heap->push_back({node.point, d2});
    std::push_heap(heap->begin(), heap->end(), worse);
  } else if (d2 < heap->front().distance) {
    std::pop_heap(heap->begin(), heap->end(), worse);
    heap->back() = {node.point, d2};
    std::push_heap(heap->begin(), heap->end(), worse);
  }

  const double delta = query[node.axis] - points_(node.point, node.axis);
  const int near = delta <= 0.0 ? node.left : node.right;
  const int far = delta <= 0.0 ? node.right : node.left;
  Search(near, query, k, heap);
  if (static_cast<int>(heap->size()) < k ||
      delta * delta < heap->front().distance) {
    Search(far, query, k, heap);
  }
}

KdTree::Neighbor KdTree::Nearest(const double* query) const {
  GA_CHECK_MSG(size() > 0, "Nearest() on empty KdTree");
  return KNearest(query, 1)[0];
}

std::vector<KdTree::Neighbor> KdTree::KNearest(const double* query,
                                               int k) const {
  k = std::min(k, size());
  std::vector<Neighbor> heap;
  heap.reserve(k);
  Search(root_, query, k, &heap);
  std::sort(heap.begin(), heap.end(), [](const Neighbor& a, const Neighbor& b) {
    return a.distance < b.distance;
  });
  for (Neighbor& nb : heap) nb.distance = std::sqrt(nb.distance);
  return heap;
}

}  // namespace graphalign
