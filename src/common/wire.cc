#include "common/wire.h"

#include <cstring>

namespace graphalign {

void ByteWriter::U32(uint32_t v) {
  char b[4];
  std::memcpy(b, &v, sizeof(v));
  bytes_.append(b, sizeof(b));
}

void ByteWriter::U64(uint64_t v) {
  char b[8];
  std::memcpy(b, &v, sizeof(v));
  bytes_.append(b, sizeof(b));
}

void ByteWriter::F64(double v) {
  char b[8];
  std::memcpy(b, &v, sizeof(v));
  bytes_.append(b, sizeof(b));
}

void ByteWriter::Str(std::string_view s) {
  U32(static_cast<uint32_t>(s.size()));
  bytes_.append(s);
}

bool ByteReader::Take(size_t n, const char** p) {
  if (failed_ || bytes_.size() - pos_ < n) {
    failed_ = true;
    return false;
  }
  *p = bytes_.data() + pos_;
  pos_ += n;
  return true;
}

bool ByteReader::U8(uint8_t* v) {
  const char* p;
  if (!Take(1, &p)) return false;
  *v = static_cast<uint8_t>(*p);
  return true;
}

bool ByteReader::U32(uint32_t* v) {
  const char* p;
  if (!Take(4, &p)) return false;
  std::memcpy(v, p, 4);
  return true;
}

bool ByteReader::U64(uint64_t* v) {
  const char* p;
  if (!Take(8, &p)) return false;
  std::memcpy(v, p, 8);
  return true;
}

bool ByteReader::I32(int32_t* v) {
  uint32_t u;
  if (!U32(&u)) return false;
  std::memcpy(v, &u, sizeof(u));
  return true;
}

bool ByteReader::F64(double* v) {
  const char* p;
  if (!Take(8, &p)) return false;
  std::memcpy(v, p, 8);
  return true;
}

bool ByteReader::Str(std::string* s, size_t max_len) {
  uint32_t len = 0;
  if (!U32(&len)) return false;
  if (len > max_len) {
    failed_ = true;
    return false;
  }
  const char* p;
  if (!Take(len, &p)) return false;
  s->assign(p, len);
  return true;
}

}  // namespace graphalign
