file(REMOVE_RECURSE
  "CMakeFiles/multi_species_ppi.dir/multi_species_ppi.cc.o"
  "CMakeFiles/multi_species_ppi.dir/multi_species_ppi.cc.o.d"
  "multi_species_ppi"
  "multi_species_ppi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_species_ppi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
