// Read-only file mapping with shared ownership (DESIGN.md §15).
//
// A MappedFile is the backing object of an mmap-loaded Graph: the Graph's
// CSR pointers aim straight into the mapping and a shared_ptr<MappedFile>
// rides along as the Graph's backing, so the pages stay mapped exactly as
// long as any Graph copy is alive. The mapping is MAP_PRIVATE of read-only
// pages that are never written, so forked workers share the physical pages
// with the daemon — loading a graph in N workers costs one copy of RAM.
#ifndef GRAPHALIGN_STORE_MAPPED_FILE_H_
#define GRAPHALIGN_STORE_MAPPED_FILE_H_

#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"

namespace graphalign {

class MappedFile {
 public:
  // Maps `path` read-only. Fails with kNotFound when the file does not
  // exist and kUnavailable on mmap/IO errors (transient: the caller must
  // not treat these as corruption).
  static Result<std::shared_ptr<MappedFile>> Open(const std::string& path);

  ~MappedFile();
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  std::string_view bytes() const {
    return {static_cast<const char*>(addr_), len_};
  }
  const std::string& path() const { return path_; }

 private:
  MappedFile(void* addr, size_t len, std::string path)
      : addr_(addr), len_(len), path_(std::move(path)) {}

  void* addr_ = nullptr;
  size_t len_ = 0;
  const std::string path_;
};

}  // namespace graphalign

#endif  // GRAPHALIGN_STORE_MAPPED_FILE_H_
