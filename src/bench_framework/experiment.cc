#include "bench_framework/experiment.h"

#include <cerrno>
#include <climits>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "common/random.h"
#include "common/table.h"
#include "common/timer.h"

namespace graphalign {

namespace {

// Exits with a usage error; bench binaries have no meaningful way to
// continue past a malformed flag value.
[[noreturn]] void BenchArgError(const std::string& flag,
                                const std::string& value,
                                const char* expected) {
  std::fprintf(stderr, "invalid value '%s' for %s (expected %s)\n",
               value.c_str(), flag.c_str(), expected);
  std::exit(2);
}

// Whole-string strictly-positive integer, rejecting trailing junk ("5x"),
// overflow, and non-positive values.
int ParsePositiveInt(const std::string& flag, const char* value) {
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || errno == ERANGE || v <= 0 ||
      v > INT_MAX) {
    BenchArgError(flag, value, "a positive integer");
  }
  return static_cast<int>(v);
}

// Whole-string strictly-positive finite double (seconds).
double ParsePositiveSeconds(const std::string& flag, const char* value) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(value, &end);
  if (end == value || *end != '\0' || errno == ERANGE || !std::isfinite(v) ||
      v <= 0.0) {
    BenchArgError(flag, value, "a positive number of seconds");
  }
  return v;
}

uint64_t ParseSeed(const std::string& flag, const char* value) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0' || errno == ERANGE) {
    BenchArgError(flag, value, "an unsigned integer");
  }
  return static_cast<uint64_t>(v);
}

}  // namespace

BenchArgs ParseBenchArgs(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      GA_CHECK_MSG(i + 1 < argc, "missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--full") {
      args.full = true;
    } else if (arg == "--reps") {
      args.repetitions = ParsePositiveInt(arg, next());
    } else if (arg == "--algos") {
      std::stringstream ss(next());
      std::string tok;
      while (std::getline(ss, tok, ',')) {
        if (!tok.empty()) args.algorithms.push_back(tok);
      }
    } else if (arg == "--csv") {
      args.csv_path = next();
    } else if (arg == "--seed") {
      args.seed = ParseSeed(arg, next());
    } else if (arg == "--time-limit") {
      args.time_limit_seconds = ParsePositiveSeconds(arg, next());
    } else {
      std::fprintf(stderr,
                   "unknown flag %s (supported: --full --reps N --algos A,B "
                   "--csv PATH --seed S --time-limit T)\n",
                   arg.c_str());
      std::exit(2);
    }
  }
  return args;
}

std::vector<std::string> SelectedAlgorithms(const BenchArgs& args) {
  if (args.algorithms.empty()) return AllAlignerNames();
  return args.algorithms;
}

RunOutcome RunAligner(Aligner* aligner, const AlignmentProblem& problem,
                      AssignmentMethod method, double time_limit_seconds) {
  RunOutcome out;
  // The deadline covers the similarity stage only: the paper's budget and
  // timing semantics apply to similarity computation (§6.2, Table 3), and
  // the assignment stage is reported separately. AfterSeconds clamps huge
  // budgets to "infinite" and treats non-positive budgets (a previous
  // repetition already spent everything) as immediately expired.
  const Deadline deadline = Deadline::AfterSeconds(time_limit_seconds);
  WallTimer timer;
  auto sim = aligner->ComputeSimilarity(problem.g1, problem.g2, deadline);
  out.similarity_seconds = timer.Seconds();
  if (!sim.ok()) {
    out.error = sim.status().code() == StatusCode::kDeadlineExceeded
                    ? "DNF (time limit)"
                    : sim.status().ToString();
    return out;
  }
  if (out.similarity_seconds > time_limit_seconds) {
    out.error = "DNF (time limit)";
    return out;
  }
  timer.Restart();
  auto align = ExtractAlignment(*sim, method);
  out.assignment_seconds = timer.Seconds();
  if (!align.ok()) {
    out.error = align.status().ToString();
    return out;
  }
  out.quality =
      EvaluateAlignment(problem.g1, problem.g2, *align, problem.ground_truth);
  out.completed = true;
  out.completed_runs = 1;
  return out;
}

RunOutcome RunAveraged(Aligner* aligner, const Graph& base,
                       const NoiseOptions& noise, AssignmentMethod method,
                       int reps, uint64_t seed, double time_limit_seconds) {
  RunOutcome total;
  Rng rng(seed);
  WallTimer budget;
  for (int r = 0; r < reps; ++r) {
    Rng instance_rng = rng.Fork();
    auto problem = MakeAlignmentProblem(base, noise, &instance_rng);
    if (!problem.ok()) {
      total.error = problem.status().ToString();
      return total;
    }
    RunOutcome one = RunAligner(aligner, *problem, method,
                                time_limit_seconds - budget.Seconds());
    if (!one.completed) {
      if (total.completed_runs == 0) {
        total.error = one.error;
        return total;
      }
      break;  // Keep the average over the completed repetitions.
    }
    total.quality.accuracy += one.quality.accuracy;
    total.quality.mnc += one.quality.mnc;
    total.quality.ec += one.quality.ec;
    total.quality.ics += one.quality.ics;
    total.quality.s3 += one.quality.s3;
    total.similarity_seconds += one.similarity_seconds;
    total.assignment_seconds += one.assignment_seconds;
    total.completed_runs += 1;
    if (budget.Seconds() > time_limit_seconds) break;
  }
  const double k = total.completed_runs;
  total.quality.accuracy /= k;
  total.quality.mnc /= k;
  total.quality.ec /= k;
  total.quality.ics /= k;
  total.quality.s3 /= k;
  total.similarity_seconds /= k;
  total.assignment_seconds /= k;
  total.completed = true;
  return total;
}

std::string FormatOutcome(const RunOutcome& outcome, double value) {
  if (!outcome.completed) {
    return outcome.error.rfind("DNF", 0) == 0 ? "DNF" : "ERR";
  }
  return Table::Num(value);
}

std::string FormatAccuracy(const RunOutcome& outcome) {
  return FormatOutcome(outcome, outcome.quality.accuracy);
}

}  // namespace graphalign
