# Empty dependencies file for ga_assignment.
# This may be replaced when dependencies are built.
