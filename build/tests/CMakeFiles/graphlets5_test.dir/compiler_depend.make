# Empty compiler generated dependencies file for graphlets5_test.
# This may be replaced when dependencies are built.
