file(REMOVE_RECURSE
  "libga_linalg.a"
)
