file(REMOVE_RECURSE
  "CMakeFiles/ga_metrics.dir/metrics.cc.o"
  "CMakeFiles/ga_metrics.dir/metrics.cc.o.d"
  "libga_metrics.a"
  "libga_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ga_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
