file(REMOVE_RECURSE
  "CMakeFiles/ga_align.dir/aligner.cc.o"
  "CMakeFiles/ga_align.dir/aligner.cc.o.d"
  "CMakeFiles/ga_align.dir/cone.cc.o"
  "CMakeFiles/ga_align.dir/cone.cc.o.d"
  "CMakeFiles/ga_align.dir/graal.cc.o"
  "CMakeFiles/ga_align.dir/graal.cc.o.d"
  "CMakeFiles/ga_align.dir/grasp.cc.o"
  "CMakeFiles/ga_align.dir/grasp.cc.o.d"
  "CMakeFiles/ga_align.dir/gw_common.cc.o"
  "CMakeFiles/ga_align.dir/gw_common.cc.o.d"
  "CMakeFiles/ga_align.dir/gwl.cc.o"
  "CMakeFiles/ga_align.dir/gwl.cc.o.d"
  "CMakeFiles/ga_align.dir/isorank.cc.o"
  "CMakeFiles/ga_align.dir/isorank.cc.o.d"
  "CMakeFiles/ga_align.dir/lrea.cc.o"
  "CMakeFiles/ga_align.dir/lrea.cc.o.d"
  "CMakeFiles/ga_align.dir/multi.cc.o"
  "CMakeFiles/ga_align.dir/multi.cc.o.d"
  "CMakeFiles/ga_align.dir/netalign.cc.o"
  "CMakeFiles/ga_align.dir/netalign.cc.o.d"
  "CMakeFiles/ga_align.dir/nsd.cc.o"
  "CMakeFiles/ga_align.dir/nsd.cc.o.d"
  "CMakeFiles/ga_align.dir/regal.cc.o"
  "CMakeFiles/ga_align.dir/regal.cc.o.d"
  "CMakeFiles/ga_align.dir/sgwl.cc.o"
  "CMakeFiles/ga_align.dir/sgwl.cc.o.d"
  "libga_align.a"
  "libga_align.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ga_align.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
