// Process exit codes shared by the CLI, the bench harness, and the server.
//
// The outcome taxonomy (OK / usage error / DNF / CRASH / OOM, DESIGN.md §10)
// crosses three process boundaries — `graphalign align` exits with these,
// the bench binaries exit with kExitUsage on malformed flags, and the
// serving daemon maps them onto its wire-level ResponseCode — so the values
// live here instead of being repeated as magic numbers at each site. The
// DNF/CRASH/OOM values are also the numeric values of the corresponding
// server response codes (server/protocol.h); keep them in sync.
#ifndef GRAPHALIGN_COMMON_EXIT_CODES_H_
#define GRAPHALIGN_COMMON_EXIT_CODES_H_

namespace graphalign {

inline constexpr int kExitOk = 0;       // Completed.
inline constexpr int kExitError = 1;    // Generic runtime error.
inline constexpr int kExitUsage = 2;    // Malformed command line / request.
inline constexpr int kExitDnf = 3;      // Time budget exceeded (DNF).
inline constexpr int kExitCrash = 4;    // The workload crashed (signal).
inline constexpr int kExitOom = 5;      // The workload exceeded its memory cap.
inline constexpr int kExitBusy = 6;     // The server refused admission (BUSY).
inline constexpr int kExitNumerical = 7;  // Recoverable numerical failure
                                          // (StatusCode::kNumerical) that was
                                          // not absorbed by degradation.
inline constexpr int kExitShuttingDown = 8;  // The server is draining and no
                                             // longer accepts new requests.
inline constexpr int kExitShed = 9;     // The request's queue wait consumed
                                        // its deadline; it was shed before
                                        // any compute (transient: retry).
inline constexpr int kExitQuarantined = 10;  // The (g1, g2, algo) signature
                                             // repeatedly crashed/OOMed and
                                             // is quarantined (permanent).
inline constexpr int kExitNoGraph = 11;  // A submit-by-hash request named a
                                         // graph the store does not hold (or
                                         // held only a corrupt, now-
                                         // quarantined copy): re-upload it.
inline constexpr int kExitPartial = 12;  // A batch completed with mixed
                                         // per-job outcomes (some OK, some
                                         // not); inspect the per-job codes.
inline constexpr int kExitAccepted = 13;  // An async job was accepted (or
                                          // deduplicated onto an existing
                                          // unfinished one); poll its id.
inline constexpr int kExitNoJob = 14;  // A job id the daemon does not hold
                                       // (never submitted, or GC'd past
                                       // its TTL).
inline constexpr int kExitConflict = 15;  // The request conflicts with the
                                          // job's state: cancel of a
                                          // finished job, or an idempotency
                                          // key reused for other content.

}  // namespace graphalign

#endif  // GRAPHALIGN_COMMON_EXIT_CODES_H_
