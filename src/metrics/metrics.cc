#include "metrics/metrics.h"

#include <algorithm>
#include <set>
#include <vector>

namespace graphalign {

double Accuracy(const Alignment& alignment,
                const std::vector<int>& ground_truth) {
  GA_CHECK(alignment.size() == ground_truth.size());
  if (alignment.empty()) return 0.0;
  int64_t correct = 0;
  for (size_t u = 0; u < alignment.size(); ++u) {
    if (alignment[u] >= 0 && alignment[u] == ground_truth[u]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(alignment.size());
}

double MeanMatchedNeighborhoodConsistency(const Graph& g1, const Graph& g2,
                                          const Alignment& alignment) {
  GA_CHECK(static_cast<int>(alignment.size()) == g1.num_nodes());
  if (g1.num_nodes() == 0) return 0.0;
  double total = 0.0;
  std::vector<int> mapped;
  for (int i = 0; i < g1.num_nodes(); ++i) {
    const int j = alignment[i];
    if (j < 0 || j >= g2.num_nodes()) continue;  // Unmatched scores 0.
    // Mapped neighborhood of i: images of N_G1(i) that land inside G2.
    mapped.clear();
    for (int k : g1.Neighbors(i)) {
      const int fk = alignment[k];
      if (fk >= 0 && fk < g2.num_nodes()) mapped.push_back(fk);
    }
    std::sort(mapped.begin(), mapped.end());
    mapped.erase(std::unique(mapped.begin(), mapped.end()), mapped.end());
    auto nj = g2.Neighbors(j);
    // |intersection| via merge of two sorted ranges.
    size_t a = 0, b = 0;
    int64_t inter = 0;
    while (a < mapped.size() && b < nj.size()) {
      if (mapped[a] < nj[b]) {
        ++a;
      } else if (mapped[a] > nj[b]) {
        ++b;
      } else {
        ++inter;
        ++a;
        ++b;
      }
    }
    const int64_t uni =
        static_cast<int64_t>(mapped.size()) + static_cast<int64_t>(nj.size()) -
        inter;
    total += uni == 0 ? 1.0 : static_cast<double>(inter) / uni;
  }
  return total / g1.num_nodes();
}

EdgeOverlap ComputeEdgeOverlap(const Graph& g1, const Graph& g2,
                               const Alignment& alignment) {
  GA_CHECK(static_cast<int>(alignment.size()) == g1.num_nodes());
  EdgeOverlap overlap;
  overlap.source_edges = g1.num_edges();
  for (int u = 0; u < g1.num_nodes(); ++u) {
    const int fu = alignment[u];
    if (fu < 0) continue;
    for (int v : g1.Neighbors(u)) {
      if (v <= u) continue;
      const int fv = alignment[v];
      if (fv < 0 || fu == fv) continue;
      if (g2.HasEdge(fu, fv)) ++overlap.preserved_edges;
    }
  }
  // Image node set and edges of G2 induced by it.
  std::vector<bool> in_image(g2.num_nodes(), false);
  for (int u = 0; u < g1.num_nodes(); ++u) {
    if (alignment[u] >= 0 && alignment[u] < g2.num_nodes()) {
      in_image[alignment[u]] = true;
    }
  }
  for (int x = 0; x < g2.num_nodes(); ++x) {
    if (!in_image[x]) continue;
    for (int y : g2.Neighbors(x)) {
      if (y > x && in_image[y]) ++overlap.induced_edges;
    }
  }
  return overlap;
}

double EdgeCorrectness(const Graph& g1, const Graph& g2,
                       const Alignment& alignment) {
  EdgeOverlap o = ComputeEdgeOverlap(g1, g2, alignment);
  return o.source_edges == 0
             ? 0.0
             : static_cast<double>(o.preserved_edges) / o.source_edges;
}

double InducedConservedStructure(const Graph& g1, const Graph& g2,
                                 const Alignment& alignment) {
  EdgeOverlap o = ComputeEdgeOverlap(g1, g2, alignment);
  return o.induced_edges == 0
             ? 0.0
             : static_cast<double>(o.preserved_edges) / o.induced_edges;
}

double SymmetricSubstructureScore(const Graph& g1, const Graph& g2,
                                  const Alignment& alignment) {
  EdgeOverlap o = ComputeEdgeOverlap(g1, g2, alignment);
  const int64_t denom = o.source_edges + o.induced_edges - o.preserved_edges;
  return denom == 0 ? 0.0 : static_cast<double>(o.preserved_edges) / denom;
}

QualityReport EvaluateAlignment(const Graph& g1, const Graph& g2,
                                const Alignment& alignment,
                                const std::vector<int>& ground_truth) {
  QualityReport report;
  report.accuracy = Accuracy(alignment, ground_truth);
  report.mnc = MeanMatchedNeighborhoodConsistency(g1, g2, alignment);
  EdgeOverlap o = ComputeEdgeOverlap(g1, g2, alignment);
  report.ec = o.source_edges == 0
                  ? 0.0
                  : static_cast<double>(o.preserved_edges) / o.source_edges;
  report.ics = o.induced_edges == 0
                   ? 0.0
                   : static_cast<double>(o.preserved_edges) / o.induced_edges;
  const int64_t denom = o.source_edges + o.induced_edges - o.preserved_edges;
  report.s3 = denom == 0 ? 0.0 : static_cast<double>(o.preserved_edges) / denom;
  return report;
}

}  // namespace graphalign
