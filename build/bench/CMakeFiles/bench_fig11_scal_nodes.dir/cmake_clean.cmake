file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_scal_nodes.dir/bench_fig11_scal_nodes.cc.o"
  "CMakeFiles/bench_fig11_scal_nodes.dir/bench_fig11_scal_nodes.cc.o.d"
  "bench_fig11_scal_nodes"
  "bench_fig11_scal_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_scal_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
