// Table 1: the algorithm inventory — year, preprocessing, target domain,
// author-proposed assignment, optimization target, complexity class, and the
// hyperparameters this framework uses (grid-searched in the paper).
#include <cstdio>

#include "bench_util.h"

namespace graphalign {
namespace {

int Main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  bench::Banner("Table 1", "algorithms considered in the experiments", args);

  Table t({"Algorithm", "Year", "Prepr.", "Bio", "Assign", "Opt", "Time",
           "Parameters"});
  t.AddRow({"IsoRank", "2008", "Yes", "Yes", "SG", "Any", "O(n^4)",
            "alpha=0.9, iters<=100"});
  t.AddRow({"GRAAL", "2010", "Yes", "No", "SG", "Any", "O(n^3)",
            "alpha=0.8, 15 orbits (73 available)"});
  t.AddRow({"NSD", "2011", "Both", "No", "SG", "Any", "O(n^2)",
            "alpha=0.8, depth=15"});
  t.AddRow({"LREA", "2018", "No", "No", "MWM", "Any", "O(n log n)",
            "iterations=8, rank<=10, (sO,sN,sC)=(2,1,0.5)"});
  t.AddRow({"REGAL", "2018", "No", "No", "NN", "Any", "O(n log n)",
            "k=2, p=10 log2 n, delta=0.1"});
  t.AddRow({"GWL", "2019", "No", "No", "NN", "Any", "O(n^3)",
            "epoch=1, beta=0.1"});
  t.AddRow({"S-GWL", "2019", "No", "No", "NN", "Any", "O(n^2 log n)",
            "beta in {0.025, 0.1}, K=4"});
  t.AddRow({"CONE", "2020", "No", "No", "NN", "MNC", "O(n^2)",
            "dim=32 (Table 1: 512; see DESIGN.md), window=10, eps=0.02"});
  t.AddRow({"GRASP", "2021", "No", "No", "JV", "Any", "O(n^3)",
            "q=100, k=20"});
  bench::Emit(t, args);

  // Verify every row is constructible through the factory.
  for (const auto& name : AllAlignerNames()) {
    auto aligner = MakeAligner(name);
    GA_CHECK_MSG(aligner.ok(), name);
  }
  std::printf("all %zu algorithms constructible via MakeAligner\n",
              AllAlignerNames().size());
  return 0;
}

}  // namespace
}  // namespace graphalign

int main(int argc, char** argv) { return graphalign::Main(argc, argv); }
