// Strict whole-string numeric parsing shared by flag handling everywhere.
//
// PR 1 introduced strict numeric validation for the bench harness flags
// (reject trailing junk like "5x", overflow, non-positive values); the CLI's
// newer flags (--threads, --workers, --cache-mb, --port, submit limits) use
// the same rules via these helpers, so "graphalign serve --workers 4x"
// fails the same way "bench --reps 4x" does. Unlike the bench wrappers,
// these return a Status instead of exiting, so callers choose the failure
// mode.
#ifndef GRAPHALIGN_COMMON_PARSE_H_
#define GRAPHALIGN_COMMON_PARSE_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace graphalign {

// Whole-string strictly-positive integer in [1, INT_MAX]; rejects empty
// input, trailing junk, overflow, zero, and negatives.
Result<int> ParseStrictPositiveInt(const std::string& text);

// Whole-string strictly-positive finite double; rejects empty input,
// trailing junk, overflow, inf/nan, zero, and negatives.
Result<double> ParseStrictPositiveDouble(const std::string& text);

// Whole-string unsigned 64-bit integer (zero allowed); rejects empty input,
// trailing junk, a leading '-', and overflow.
Result<uint64_t> ParseStrictUint64(const std::string& text);

}  // namespace graphalign

#endif  // GRAPHALIGN_COMMON_PARSE_H_
