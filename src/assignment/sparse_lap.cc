#include "assignment/sparse_lap.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <utility>

namespace graphalign {

Result<Alignment> SparseLapAssign(
    int num_rows, int num_cols,
    const std::vector<SparseCandidate>& candidates,
    const Deadline& deadline) {
  if (num_rows < 0 || num_cols < 0) {
    return Status::InvalidArgument("SparseLapAssign: negative dimensions");
  }
  DeadlineChecker checker(deadline, /*stride=*/8);
  double max_sim = 0.0;
  for (const SparseCandidate& c : candidates) {
    if (c.row < 0 || c.row >= num_rows || c.col < 0 || c.col >= num_cols) {
      return Status::OutOfRange("SparseLapAssign: candidate out of range");
    }
    if (!std::isfinite(c.similarity)) {
      return Status::InvalidArgument("SparseLapAssign: non-finite similarity");
    }
    max_sim = std::max(max_sim, c.similarity);
  }
  // Non-negative costs for Dijkstra: cost = max_sim - sim. Every row also
  // gets a private "skip" column (index num_cols + row) with a cost larger
  // than any real augmenting path, so each row-wise augmentation succeeds
  // and the final matching maximizes cardinality first, total similarity
  // second — globally, not just per processing order.
  struct Arc {
    int col;
    double cost;
  };
  const double kSkipCost =
      (max_sim + 1.0) * (static_cast<double>(num_rows) + num_cols + 1.0);
  const int total_cols = num_cols + num_rows;
  std::vector<std::vector<Arc>> arcs(num_rows);
  for (const SparseCandidate& c : candidates) {
    arcs[c.row].push_back({c.col, max_sim - c.similarity});
  }
  for (int r = 0; r < num_rows; ++r) {
    arcs[r].push_back({num_cols + r, kSkipCost});
  }

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<int> row_match(num_rows, -1);
  std::vector<int> col_match(total_cols, -1);
  std::vector<double> u(num_rows, 0.0), v(total_cols, 0.0);
  std::vector<double> dist(total_cols);
  std::vector<int> pred_row(total_cols);
  std::vector<bool> done(total_cols);

  using QItem = std::pair<double, int>;  // (distance, column)
  for (int s = 0; s < num_rows; ++s) {
    GA_RETURN_IF_EXPIRED(checker, "SparseLapAssign");
    std::fill(dist.begin(), dist.end(), kInf);
    std::fill(pred_row.begin(), pred_row.end(), -1);
    std::fill(done.begin(), done.end(), false);
    std::priority_queue<QItem, std::vector<QItem>, std::greater<>> pq;
    for (const Arc& a : arcs[s]) {
      const double rc = a.cost - u[s] - v[a.col];
      if (rc < dist[a.col]) {
        dist[a.col] = rc;
        pred_row[a.col] = s;
        pq.push({rc, a.col});
      }
    }
    int found = -1;
    double total = 0.0;
    while (!pq.empty()) {
      auto [d, j] = pq.top();
      pq.pop();
      if (done[j] || d > dist[j]) continue;
      done[j] = true;
      if (col_match[j] < 0) {
        found = j;
        total = d;
        break;
      }
      const int i = col_match[j];
      for (const Arc& a : arcs[i]) {
        if (done[a.col]) continue;
        const double nd = d + a.cost - u[i] - v[a.col];
        if (nd < dist[a.col]) {
          dist[a.col] = nd;
          pred_row[a.col] = i;
          pq.push({nd, a.col});
        }
      }
    }
    // The skip column guarantees an augmenting path always exists.
    GA_CHECK(found >= 0);

    // Dual update keeps reduced costs non-negative and matched edges tight.
    u[s] += total;
    for (int j = 0; j < total_cols; ++j) {
      if (!done[j] || j == found) continue;
      const double delta = total - dist[j];
      v[j] -= delta;
      if (col_match[j] >= 0) u[col_match[j]] += delta;
    }

    // Augment along the predecessor chain.
    int j = found;
    for (;;) {
      const int i = pred_row[j];
      col_match[j] = i;
      const int prev_j = row_match[i];
      row_match[i] = j;
      if (i == s) break;
      j = prev_j;
    }
  }
  // Rows matched to their skip column are reported unmatched.
  for (int r = 0; r < num_rows; ++r) {
    if (row_match[r] >= num_cols) row_match[r] = -1;
  }
  return row_match;
}

}  // namespace graphalign
