// Noise models and alignment-problem construction (paper §5.1.1).
//
// The paper perturbs a base graph with one of three strategies, permutes the
// target's node labels, and asks algorithms to recover the permutation:
//   One-Way:     remove edges from the target G2 only.
//   Multi-Modal: remove AND add the same number of edges in G2.
//   Two-Way:     remove edges independently from both G1 and G2.
#ifndef GRAPHALIGN_NOISE_NOISE_H_
#define GRAPHALIGN_NOISE_NOISE_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "graph/graph.h"

namespace graphalign {

enum class NoiseType { kOneWay, kMultiModal, kTwoWay };

const char* NoiseTypeName(NoiseType type);

struct NoiseOptions {
  NoiseType type = NoiseType::kOneWay;
  // Fraction of edges perturbed, e.g. 0.05 for 5%.
  double level = 0.0;
  // If true, edge removals that would disconnect the graph are skipped
  // (used in the assignment-method experiment, paper §6.2).
  bool keep_connected = false;
  // If true the target graph's node labels are shuffled (the usual protocol;
  // disable only for debugging).
  bool permute = true;
};

// A self-aligned benchmark instance: source graph, perturbed+permuted target,
// and the hidden correspondence (ground_truth[u] = the g2 node for g1 node u).
struct AlignmentProblem {
  Graph g1;
  Graph g2;
  std::vector<int> ground_truth;
};

// Removes `count` uniformly random edges. With keep_connected, removals that
// would disconnect the graph are skipped; if fewer than `count` removable
// edges exist, removes as many as possible.
Result<Graph> RemoveRandomEdges(const Graph& g, int64_t count, Rng* rng,
                                bool keep_connected = false);

// Adds `count` uniformly random non-edges (no-op pairs are retried).
Result<Graph> AddRandomEdges(const Graph& g, int64_t count, Rng* rng);

// Builds a noisy alignment instance from a base graph per the options.
Result<AlignmentProblem> MakeAlignmentProblem(const Graph& base,
                                              const NoiseOptions& options,
                                              Rng* rng);

// Builds an instance from two related graphs with identity correspondence
// (the real-ground-truth protocol of §6.5); permutes g2's labels.
Result<AlignmentProblem> MakeProblemFromPair(const Graph& g1, const Graph& g2,
                                             Rng* rng);

}  // namespace graphalign

#endif  // GRAPHALIGN_NOISE_NOISE_H_
