#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/random.h"
#include "linalg/csr.h"
#include "linalg/dense.h"

namespace graphalign {
namespace {

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  const int64_t n = 100000;
  std::vector<std::atomic<int>> hits(n);
  ParallelFor(n, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  }, /*min_work=*/1);
  for (int64_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, BlocksAreContiguousAndOrderedWithinCall) {
  // Each invocation receives a [lo, hi) range; ranges must not overlap.
  const int64_t n = 5000;
  std::vector<int> owner(n, -1);
  std::atomic<int> next_id{0};
  ParallelFor(n, [&](int64_t lo, int64_t hi) {
    const int id = next_id.fetch_add(1);
    for (int64_t i = lo; i < hi; ++i) {
      ASSERT_EQ(owner[i], -1);
      owner[i] = id;
    }
  }, 1);
  for (int64_t i = 0; i < n; ++i) ASSERT_NE(owner[i], -1);
}

TEST(ParallelForTest, SmallWorkRunsInline) {
  // With n below min_work there is exactly one invocation covering all.
  int calls = 0;
  ParallelFor(10, [&](int64_t lo, int64_t hi) {
    ++calls;
    EXPECT_EQ(lo, 0);
    EXPECT_EQ(hi, 10);
  }, /*min_work=*/100);
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForTest, ZeroAndNegativeSizesAreNoOps) {
  int calls = 0;
  ParallelFor(0, [&](int64_t, int64_t) { ++calls; });
  ParallelFor(-5, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelForTest, ThreadCountIsPositive) {
  EXPECT_GE(ParallelThreadCount(), 1);
}

TEST(ParallelForTest, RepeatedCallsAreStable) {
  // Stress the pool handshake: many back-to-back parallel regions.
  for (int round = 0; round < 200; ++round) {
    std::atomic<int64_t> sum{0};
    ParallelFor(1000, [&](int64_t lo, int64_t hi) {
      int64_t local = 0;
      for (int64_t i = lo; i < hi; ++i) local += i;
      sum.fetch_add(local);
    }, 1);
    ASSERT_EQ(sum.load(), 999LL * 1000 / 2);
  }
}

TEST(ParallelKernelsTest, GemmMatchesSequentialReference) {
  Rng rng(5);
  const int n = 257;  // Odd size to exercise uneven partitioning.
  DenseMatrix a(n, n), b(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      a(i, j) = rng.Normal();
      b(i, j) = rng.Normal();
    }
  }
  DenseMatrix c = Multiply(a, b);  // Possibly parallel.
  // Sequential reference for a few sampled entries.
  for (int trial = 0; trial < 50; ++trial) {
    const int i = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(n)));
    const int j = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(n)));
    double s = 0.0;
    for (int k = 0; k < n; ++k) s += a(i, k) * b(k, j);
    ASSERT_NEAR(c(i, j), s, 1e-9);
  }
}

TEST(ParallelKernelsTest, SpmmDeterministicAcrossRuns) {
  Rng rng(6);
  std::vector<Triplet> trip;
  const int n = 400;
  for (int k = 0; k < 4000; ++k) {
    trip.push_back({static_cast<int>(rng.UniformInt(static_cast<uint64_t>(n))),
                    static_cast<int>(rng.UniformInt(static_cast<uint64_t>(n))),
                    rng.Normal()});
  }
  CsrMatrix s = CsrMatrix::FromTriplets(n, n, trip);
  DenseMatrix x(n, 80);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < 80; ++j) x(i, j) = rng.Normal();
  }
  DenseMatrix y1 = s.Multiply(x);
  DenseMatrix y2 = s.Multiply(x);
  // Byte-identical: the row partition fixes the floating-point order.
  EXPECT_TRUE(y1 == y2);
  DenseMatrix xt = x.Transposed();  // 80 x n, conformable for x * S.
  DenseMatrix z1 = s.RightMultiplied(xt);
  DenseMatrix z2 = s.RightMultiplied(xt);
  EXPECT_TRUE(z1 == z2);
}

}  // namespace
}  // namespace graphalign
