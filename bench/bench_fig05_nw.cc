// Figure 5: Accuracy, S3, and MNC on Newman-Watts small-world graphs
// (k = 7 -> ring degree 6 plus shortcuts, p = 0.5), three noise types,
// noise up to 5% (paper §6.3).
#include "figure_synthetic.h"
#include "graph/generators.h"

int main(int argc, char** argv) {
  return graphalign::bench::RunSyntheticFigure(
      "Figure 5", "Newman-Watts",
      [](int n, graphalign::Rng* rng) {
        // The paper's k = 7; our ring lattice requires even k.
        return graphalign::NewmanWatts(n, 6, 0.5, rng);
      },
      argc, argv);
}
