#include "gateway/gateway.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/subprocess.h"
#include "gateway/json.h"
#include "jobs/manager.h"
#include "store/graph_store.h"

namespace graphalign {

namespace {

constexpr const char* kJsonType = "application/json";

double ElapsedSeconds(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       since)
      .count();
}

void SetSocketTimeouts(int fd, double seconds) {
  if (seconds <= 0.0) return;
  struct timeval tv;
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>(
      (seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

// ---------------------------------------------------------------------------
// JSON <-> protocol translation.

// {"n": <int>, "edges": [[u,v], ...]} -> WireGraph. Bounds mirror the
// protocol decoder's: the JSON layer must not admit what GAF1 would
// reject.
bool ParseWireGraphJson(const JsonValue& v, WireGraph* g, std::string* err) {
  if (!v.is_object()) {
    *err = "graph must be an object with \"n\" and \"edges\"";
    return false;
  }
  int64_t n = 0;
  if (!v.Get("n").AsInt64(&n, 0, 8 << 20)) {
    *err = "graph \"n\" must be an integer node count";
    return false;
  }
  const JsonValue& edges = v.Get("edges");
  if (!edges.is_array()) {
    *err = "graph \"edges\" must be an array of [u,v] pairs";
    return false;
  }
  g->num_nodes = static_cast<int>(n);
  g->edges.clear();
  g->edges.reserve(edges.AsArray().size());
  for (const JsonValue& e : edges.AsArray()) {
    int64_t u = 0, vv = 0;
    if (!e.is_array() || e.AsArray().size() != 2 ||
        !e.AsArray()[0].AsInt64(&u, 0, n - 1) ||
        !e.AsArray()[1].AsInt64(&vv, 0, n - 1)) {
      *err = "graph edge must be [u,v] with endpoints in [0,n)";
      return false;
    }
    g->edges.push_back({static_cast<int>(u), static_cast<int>(vv)});
  }
  return true;
}

bool ParseHashJson(const JsonValue& v, uint64_t* hash, std::string* err) {
  if (!v.is_string()) {
    *err = "hash must be a 16-hex-digit string";
    return false;
  }
  auto parsed = GraphStore::ParseHashName(v.AsString());
  if (!parsed.ok()) {
    *err = parsed.status().ToString();
    return false;
  }
  *hash = *parsed;
  return true;
}

// Optional scalar fields shared by /v1/align jobs and batch jobs.
bool ParseJobOptions(const JsonValue& v, std::string* assign,
                     uint64_t* deadline_ms, uint64_t* mem_limit_mb,
                     bool* no_cache, std::string* err) {
  if (v.Has("assign")) {
    if (!v.Get("assign").is_string() ||
        v.Get("assign").AsString().size() > kMaxNameLen) {
      *err = "\"assign\" must be a short string";
      return false;
    }
    *assign = v.Get("assign").AsString();
  }
  int64_t tmp = 0;
  if (v.Has("deadline_ms")) {
    if (!v.Get("deadline_ms").AsInt64(&tmp, 0, int64_t{1} << 40)) {
      *err = "\"deadline_ms\" must be a non-negative integer";
      return false;
    }
    *deadline_ms = static_cast<uint64_t>(tmp);
  }
  if (v.Has("mem_limit_mb")) {
    if (!v.Get("mem_limit_mb").AsInt64(&tmp, 0, int64_t{1} << 30)) {
      *err = "\"mem_limit_mb\" must be a non-negative integer";
      return false;
    }
    *mem_limit_mb = static_cast<uint64_t>(tmp);
  }
  if (v.Has("no_cache")) {
    if (!v.Get("no_cache").is_bool()) {
      *err = "\"no_cache\" must be a boolean";
      return false;
    }
    *no_cache = v.Get("no_cache").AsBool();
  }
  return true;
}

bool ParseAlgo(const JsonValue& v, std::string* algo, std::string* err) {
  if (!v.Get("algo").is_string() ||
      v.Get("algo").AsString().empty() ||
      v.Get("algo").AsString().size() > kMaxNameLen) {
    *err = "\"algo\" is required and must be a short string";
    return false;
  }
  *algo = v.Get("algo").AsString();
  return true;
}

bool ParseClient(const JsonValue& v, std::string* client, std::string* err) {
  if (!v.Has("client")) return true;
  if (!v.Get("client").is_string() ||
      v.Get("client").AsString().size() > kMaxNameLen) {
    *err = "\"client\" must be a short string";
    return false;
  }
  *client = v.Get("client").AsString();
  return true;
}

// POST /v1/align body -> kAlign request. Graphs arrive either both inline
// ("g1"/"g2") or both by store hash ("g1_hash"/"g2_hash") — the same
// exclusivity the wire protocol enforces.
bool BuildAlignRequest(const JsonValue& v, Request* request,
                       std::string* err) {
  if (!v.is_object()) {
    *err = "body must be a JSON object";
    return false;
  }
  request->type = RequestType::kAlign;
  AlignRequest& a = request->align;
  if (!ParseAlgo(v, &a.algo, err) || !ParseClient(v, &request->client, err) ||
      !ParseJobOptions(v, &a.assign, &a.deadline_ms, &a.mem_limit_mb,
                       &a.no_cache, err)) {
    return false;
  }
  const bool hashed = v.Has("g1_hash") || v.Has("g2_hash");
  const bool inline_graphs = v.Has("g1") || v.Has("g2");
  if (hashed == inline_graphs) {
    *err = "provide either g1/g2 inline graphs or g1_hash/g2_hash (not both)";
    return false;
  }
  if (hashed) {
    a.by_hash = true;
    if (!ParseHashJson(v.Get("g1_hash"), &a.g1_hash, err) ||
        !ParseHashJson(v.Get("g2_hash"), &a.g2_hash, err)) {
      return false;
    }
  } else {
    if (!ParseWireGraphJson(v.Get("g1"), &a.g1, err) ||
        !ParseWireGraphJson(v.Get("g2"), &a.g2, err)) {
      return false;
    }
  }
  return true;
}

// POST /v1/align:batch body -> kAlignBatch request.
bool BuildBatchRequest(const JsonValue& v, Request* request,
                       std::string* err) {
  if (!v.is_object()) {
    *err = "body must be a JSON object";
    return false;
  }
  request->type = RequestType::kAlignBatch;
  if (!ParseClient(v, &request->client, err)) return false;
  AlignBatchRequest& b = request->align_batch;
  const JsonValue& graphs = v.Get("graphs");
  if (!graphs.is_array() || graphs.AsArray().empty() ||
      graphs.AsArray().size() > kMaxBatchGraphs) {
    *err = "\"graphs\" must be a non-empty array of at most " +
           std::to_string(kMaxBatchGraphs) + " entries";
    return false;
  }
  for (const JsonValue& g : graphs.AsArray()) {
    BatchGraphRef ref;
    if (g.is_object() && g.Has("hash")) {
      ref.by_hash = true;
      if (!ParseHashJson(g.Get("hash"), &ref.hash, err)) return false;
    } else if (!ParseWireGraphJson(g, &ref.inline_graph, err)) {
      return false;
    }
    b.graphs.push_back(std::move(ref));
  }
  const JsonValue& jobs = v.Get("jobs");
  if (!jobs.is_array() || jobs.AsArray().empty() ||
      jobs.AsArray().size() > kMaxBatchJobs) {
    *err = "\"jobs\" must be a non-empty array of at most " +
           std::to_string(kMaxBatchJobs) + " entries";
    return false;
  }
  for (const JsonValue& j : jobs.AsArray()) {
    if (!j.is_object()) {
      *err = "each job must be an object";
      return false;
    }
    BatchJob job;
    int64_t g1 = 0, g2 = 0;
    const int64_t max_idx = static_cast<int64_t>(b.graphs.size()) - 1;
    if (!j.Get("g1").AsInt64(&g1, 0, max_idx) ||
        !j.Get("g2").AsInt64(&g2, 0, max_idx)) {
      *err = "job \"g1\"/\"g2\" must index into \"graphs\"";
      return false;
    }
    job.g1 = static_cast<uint32_t>(g1);
    job.g2 = static_cast<uint32_t>(g2);
    if (!ParseAlgo(j, &job.algo, err) ||
        !ParseJobOptions(j, &job.assign, &job.deadline_ms, &job.mem_limit_mb,
                         &job.no_cache, err)) {
      return false;
    }
    b.jobs.push_back(std::move(job));
  }
  return true;
}

JsonValue AlignResultJson(const AlignResult& r) {
  JsonValue out = JsonValue::Object();
  JsonValue mapping = JsonValue::Array();
  for (int32_t m : r.mapping) {
    mapping.Push(JsonValue::Number(static_cast<double>(m)));
  }
  out.Set("mapping", std::move(mapping));
  out.Set("mnc", JsonValue::Number(r.mnc));
  out.Set("ec", JsonValue::Number(r.ec));
  out.Set("s3", JsonValue::Number(r.s3));
  out.Set("align_seconds", JsonValue::Number(r.align_seconds));
  out.Set("degraded", JsonValue::Bool(r.degraded));
  if (r.degraded) {
    out.Set("degrade_reason", JsonValue::Str(r.degrade_reason));
  }
  return out;
}

// Async-job envelope shared by POST /v1/jobs, GET /v1/jobs/<id>, and
// DELETE /v1/jobs/<id>. The job id is rendered as the same 16-hex-digit
// string `submit --async` prints, never a JSON number: a u64 does not
// survive the double round trip.
JsonValue JobInfoJson(const JobInfo& info) {
  JsonValue out = JsonValue::Object();
  out.Set("job_id", JsonValue::Str(GraphStore::HashName(info.job_id)));
  out.Set("state", JsonValue::Str(info.state_name));
  out.Set("attempts", JsonValue::Number(static_cast<double>(info.attempts)));
  out.Set("max_attempts",
          JsonValue::Number(static_cast<double>(info.max_attempts)));
  out.Set("submitted_unix_ms",
          JsonValue::Number(static_cast<double>(info.submitted_unix_ms)));
  out.Set("updated_unix_ms",
          JsonValue::Number(static_cast<double>(info.updated_unix_ms)));
  out.Set("existing", JsonValue::Bool(info.existing));
  if (JobStateTerminal(static_cast<JobState>(info.state))) {
    out.Set("terminal_status",
            JsonValue::Str(ResponseCodeName(
                static_cast<ResponseCode>(info.terminal_code))));
  }
  if (!info.message.empty()) {
    out.Set("message", JsonValue::Str(info.message));
  }
  return out;
}

}  // namespace

Status BatchRequestFromJson(const JsonValue& body, Request* request) {
  std::string err;
  if (!BuildBatchRequest(body, request, &err)) {
    return Status::InvalidArgument(err);
  }
  return Status::Ok();
}

int HttpStatusForResponseCode(ResponseCode code) {
  switch (code) {
    case ResponseCode::kOk: return 200;
    case ResponseCode::kAccepted: return 202;
    case ResponseCode::kPartial: return 207;
    case ResponseCode::kBadRequest: return 400;
    case ResponseCode::kQuarantined: return 409;
    case ResponseCode::kConflict: return 409;
    case ResponseCode::kNoGraph: return 404;
    case ResponseCode::kNoJob: return 404;
    case ResponseCode::kBusy: return 429;
    case ResponseCode::kShuttingDown:
    case ResponseCode::kShed:
      return 503;
    case ResponseCode::kDnf: return 504;
    case ResponseCode::kError:
    case ResponseCode::kCrash:
    case ResponseCode::kOom:
    case ResponseCode::kNumerical:
      return 500;
  }
  return 500;
}

class Gateway::Impl {
 public:
  explicit Impl(const GatewayOptions& options) : options_(options) {}

  ~Impl() {
    Shutdown();
    Wait();
    if (listen_fd_ >= 0) close(listen_fd_);
  }

  Status Bind() {
    if (options_.workers <= 0) {
      return Status::InvalidArgument("gateway: workers must be positive");
    }
    if (options_.max_connections <= 0) {
      return Status::InvalidArgument(
          "gateway: max_connections must be positive");
    }
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      return Status::Internal("socket() failed: " +
                              std::string(strerror(errno)));
    }
    const int one = 1;
    setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(options_.http_port));
    if (bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      const std::string detail = strerror(errno);
      close(fd);
      return Status::Internal("gateway bind(127.0.0.1:" +
                              std::to_string(options_.http_port) +
                              ") failed: " + detail);
    }
    if (listen(fd, 64) != 0) {
      const std::string detail = strerror(errno);
      close(fd);
      return Status::Internal("gateway listen() failed: " + detail);
    }
    socklen_t len = sizeof(addr);
    if (getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) ==
        0) {
      bound_port_ = ntohs(addr.sin_port);
    }
    listen_fd_ = fd;
    return Status::Ok();
  }

  Status Start() {
    if (listen_fd_ < 0) {
      return Status::FailedPrecondition("gateway: not bound");
    }
    for (int w = 0; w < options_.workers; ++w) {
      threads_.emplace_back([this] { WorkerLoop(); });
    }
    threads_.emplace_back([this] { AcceptLoop(); });
    return Status::Ok();
  }

  void Shutdown() {
    bool expected = false;
    if (!stopping_.compare_exchange_strong(expected, true)) return;
    if (listen_fd_ >= 0) shutdown(listen_fd_, SHUT_RDWR);
    std::lock_guard<std::mutex> lock(mu_);
    for (int fd : active_fds_) shutdown(fd, SHUT_RDWR);
    for (int fd : queue_) shutdown(fd, SHUT_RDWR);
    queue_cv_.notify_all();
  }

  void Wait() {
    std::vector<std::thread> threads;
    {
      std::lock_guard<std::mutex> lock(mu_);
      threads.swap(threads_);
    }
    for (std::thread& t : threads) t.join();
    std::lock_guard<std::mutex> lock(mu_);
    for (int fd : queue_) close(fd);
    queue_.clear();
  }

  int port() const { return bound_port_; }

  GatewayStats stats() const {
    GatewayStats s;
    s.connections = connections_.load(std::memory_order_relaxed);
    s.requests = requests_.load(std::memory_order_relaxed);
    s.rejected_overload = rejected_overload_.load(std::memory_order_relaxed);
    s.bad_requests = bad_requests_.load(std::memory_order_relaxed);
    s.oversized = oversized_.load(std::memory_order_relaxed);
    s.timeouts = timeouts_.load(std::memory_order_relaxed);
    s.backend_errors = backend_errors_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  // -------------------------------------------------------------------------
  // Accept with a hard connection bound (the HTTP analogue of the daemon's
  // admission queue: beyond the limit the client gets a typed 503 now, not
  // a silent stall).

  void AcceptLoop() {
    // Socket shuffling only; fork-tolerant by the same argument as the
    // daemon's accept thread (common/subprocess.h).
    ScopedForkTolerantThread fork_tolerant;
    while (!stopping_.load(std::memory_order_relaxed)) {
      const int fd = accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if (stopping_.load(std::memory_order_relaxed)) {
        close(fd);
        break;
      }
      connections_.fetch_add(1, std::memory_order_relaxed);
      SetSocketTimeouts(fd, options_.io_timeout_seconds);
      bool admitted = false;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (queue_.size() + active_fds_.size() <
            static_cast<size_t>(options_.max_connections)) {
          queue_.push_back(fd);
          admitted = true;
          queue_cv_.notify_one();
        }
      }
      if (!admitted) {
        rejected_overload_.fetch_add(1, std::memory_order_relaxed);
        const std::string body =
            "{\"status\":\"BUSY\",\"error\":\"gateway connection limit (" +
            std::to_string(options_.max_connections) +
            ") reached; retry with backoff\"}";
        // The accept-time 503 carries the same Retry-After hint the daemon
        // attaches to its own transient rejections; clients treat both
        // identically.
        const std::string resp = EncodeHttpResponse(
            503, kJsonType, body, false, {{"Retry-After", "1"}});
        (void)send(fd, resp.data(), resp.size(), MSG_NOSIGNAL);
        close(fd);
      }
    }
  }

  void WorkerLoop() {
    ScopedForkTolerantThread fork_tolerant;
    for (;;) {
      int fd = -1;
      {
        std::unique_lock<std::mutex> lock(mu_);
        queue_cv_.wait(lock, [this] {
          return stopping_.load(std::memory_order_relaxed) || !queue_.empty();
        });
        if (queue_.empty()) return;  // Stopping and drained.
        fd = queue_.front();
        queue_.pop_front();
        active_fds_.insert(fd);
      }
      ServeConnection(fd);
      {
        std::lock_guard<std::mutex> lock(mu_);
        active_fds_.erase(fd);
      }
      close(fd);
      if (stopping_.load(std::memory_order_relaxed)) return;
    }
  }

  // Sends a response; false on socket error (peer gone).
  bool Send(
      int fd, int status, const std::string& body, bool keep_alive,
      const char* content_type = kJsonType,
      const std::vector<std::pair<std::string, std::string>>& extra_headers =
          {}) {
    const std::string resp = EncodeHttpResponse(status, content_type, body,
                                                keep_alive, extra_headers);
    size_t off = 0;
    while (off < resp.size()) {
      const ssize_t n =
          send(fd, resp.data() + off, resp.size() - off, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      off += static_cast<size_t>(n);
    }
    return true;
  }

  static std::string ErrorBody(const char* status_name,
                               const std::string& detail) {
    return std::string("{\"status\":\"") + status_name + "\",\"error\":\"" +
           JsonEscape(detail) + "\"}";
  }

  void ServeConnection(int fd) {
    std::string buf;
    auto request_start = std::chrono::steady_clock::now();
    bool mid_request = false;
    for (;;) {
      // Drain complete requests already buffered (pipelined or keep-alive).
      for (;;) {
        HttpRequest request;
        size_t consumed = 0;
        std::string perr;
        const HttpParseStatus ps = ParseHttpRequest(
            buf, options_.limits, &request, &consumed, &perr);
        if (ps == HttpParseStatus::kIncomplete) {
          mid_request = !buf.empty();
          break;
        }
        requests_.fetch_add(1, std::memory_order_relaxed);
        if (ps != HttpParseStatus::kComplete) {
          // Typed rejection, then hang up: after a framing violation there
          // is no trustworthy request boundary left.
          int status = 400;
          if (ps == HttpParseStatus::kTooLarge) status = 431;
          if (ps == HttpParseStatus::kBodyTooLarge) status = 413;
          if (ps == HttpParseStatus::kUnsupported) status = 501;
          (status == 413 ? oversized_ : bad_requests_)
              .fetch_add(1, std::memory_order_relaxed);
          (void)Send(fd, status, ErrorBody("BAD_REQUEST", perr), false);
          return;
        }
        buf.erase(0, consumed);
        const bool keep_alive =
            request.KeepAlive() && !stopping_.load(std::memory_order_relaxed);
        if (!HandleRequest(fd, request, keep_alive)) return;
        if (!keep_alive) return;
        request_start = std::chrono::steady_clock::now();
        mid_request = !buf.empty();
      }
      // Need more bytes. The per-recv socket timeout plus this wall check
      // bounds how long a drip-fed (slowloris) request can hold the worker.
      if (ElapsedSeconds(request_start) > options_.io_timeout_seconds) {
        if (mid_request) {
          timeouts_.fetch_add(1, std::memory_order_relaxed);
          (void)Send(fd, 408,
                     ErrorBody("BAD_REQUEST",
                               "request not completed in time"),
                     false);
        }
        return;
      }
      char chunk[16 * 1024];
      const ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
      if (n == 0) return;  // Peer closed.
      if (n < 0) {
        if (errno == EINTR) continue;
        if ((errno == EAGAIN || errno == EWOULDBLOCK) && mid_request) {
          timeouts_.fetch_add(1, std::memory_order_relaxed);
          (void)Send(fd, 408,
                     ErrorBody("BAD_REQUEST",
                               "request not completed in time"),
                     false);
        }
        return;
      }
      buf.append(chunk, static_cast<size_t>(n));
    }
  }

  // One GAF1 round trip over a fresh backend connection. The gateway tags
  // the request as HTTP transport for the daemon's per-transport counters.
  Result<Response> CallBackend(Request request) {
    request.transport = Transport::kHttp;
    auto client = Client::Connect(options_.backend);
    if (!client.ok()) return client.status();
    return client->Call(request);
  }

  // Routes one parsed request; false when the socket died mid-response.
  bool HandleRequest(int fd, const HttpRequest& request, bool keep_alive) {
    // Strip any query string: routing is path-only.
    std::string path = request.target;
    const size_t q = path.find('?');
    if (q != std::string::npos) path.resize(q);

    if (path == "/healthz") {
      if (request.method != "GET") return MethodNotAllowed(fd, keep_alive);
      Request ping;
      ping.type = RequestType::kPing;
      auto response = CallBackend(std::move(ping));
      if (!response.ok() || response->code != ResponseCode::kOk) {
        if (!response.ok()) {
          backend_errors_.fetch_add(1, std::memory_order_relaxed);
        }
        return Send(fd, 503,
                    ErrorBody("ERROR", !response.ok()
                                           ? response.status().ToString()
                                           : response->message),
                    keep_alive);
      }
      return Send(fd, 200, "ok\n", keep_alive, "text/plain");
    }
    if (path == "/stats") {
      if (request.method != "GET") return MethodNotAllowed(fd, keep_alive);
      return HandleStats(fd, keep_alive);
    }
    if (path == "/v1/graphs") {
      if (request.method != "POST") return MethodNotAllowed(fd, keep_alive);
      return HandlePutGraph(fd, request, keep_alive);
    }
    if (path.rfind("/v1/graphs/", 0) == 0) {
      if (request.method != "GET") return MethodNotAllowed(fd, keep_alive);
      return HandleHasGraph(fd, path.substr(strlen("/v1/graphs/")),
                            keep_alive);
    }
    if (path == "/v1/align") {
      if (request.method != "POST") return MethodNotAllowed(fd, keep_alive);
      return HandleAlign(fd, request, keep_alive);
    }
    if (path == "/v1/jobs") {
      if (request.method != "POST") return MethodNotAllowed(fd, keep_alive);
      return HandleSubmitJob(fd, request, keep_alive);
    }
    if (path.rfind("/v1/jobs/", 0) == 0) {
      const std::string id_name = path.substr(strlen("/v1/jobs/"));
      if (request.method == "GET") {
        return HandleJobStatus(fd, id_name, keep_alive);
      }
      if (request.method == "DELETE") {
        return HandleCancelJob(fd, id_name, keep_alive);
      }
      return MethodNotAllowed(fd, keep_alive);
    }
    if (path == "/v1/align:batch") {
      if (request.method != "POST") return MethodNotAllowed(fd, keep_alive);
      return HandleAlignBatch(fd, request, keep_alive);
    }
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    return Send(fd, 404, ErrorBody("BAD_REQUEST", "no such route: " + path),
                keep_alive);
  }

  bool MethodNotAllowed(int fd, bool keep_alive) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    return Send(fd, 405,
                ErrorBody("BAD_REQUEST", "method not allowed on this route"),
                keep_alive);
  }

  bool BadJson(int fd, const std::string& detail, bool keep_alive) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    return Send(fd, 400, ErrorBody("BAD_REQUEST", detail), keep_alive);
  }

  bool BackendDown(int fd, const Status& status, bool keep_alive) {
    backend_errors_.fetch_add(1, std::memory_order_relaxed);
    return Send(fd, 503,
                ErrorBody("ERROR", "daemon unreachable: " + status.ToString()),
                keep_alive);
  }

  // The shared tail of every forwarded call: map the typed ResponseCode to
  // an HTTP status and attach the standard envelope fields.
  bool SendDaemonResponse(int fd, const Response& response, JsonValue body,
                          bool keep_alive) {
    body.Set("status", JsonValue::Str(ResponseCodeName(response.code)));
    body.Set("cache_hit", JsonValue::Bool(response.cache_hit));
    body.Set("elapsed_us",
             JsonValue::Number(static_cast<double>(response.elapsed_us)));
    if (!response.message.empty()) {
      body.Set("error", JsonValue::Str(response.message));
    }
    const int status = HttpStatusForResponseCode(response.code);
    std::vector<std::pair<std::string, std::string>> extra;
    if (response.retry_after_ms > 0 && (status == 429 || status == 503)) {
      // Retry-After is delta-seconds; round up so a 250ms hint never
      // becomes "retry immediately". The exact millisecond hint rides in
      // the body for clients that want the finer grain.
      extra.emplace_back(
          "Retry-After", std::to_string((response.retry_after_ms + 999) / 1000));
      body.Set("retry_after_ms",
               JsonValue::Number(static_cast<double>(response.retry_after_ms)));
    }
    return Send(fd, status, body.Dump(), keep_alive, kJsonType, extra);
  }

  bool HandleStats(int fd, bool keep_alive) {
    Request req;
    req.type = RequestType::kServerStats;
    auto response = CallBackend(std::move(req));
    JsonValue out = JsonValue::Object();
    JsonValue gw = JsonValue::Object();
    const GatewayStats s = stats();
    gw.Set("connections", JsonValue::Number(static_cast<double>(s.connections)));
    gw.Set("requests", JsonValue::Number(static_cast<double>(s.requests)));
    gw.Set("rejected_overload",
           JsonValue::Number(static_cast<double>(s.rejected_overload)));
    gw.Set("bad_requests",
           JsonValue::Number(static_cast<double>(s.bad_requests)));
    gw.Set("oversized", JsonValue::Number(static_cast<double>(s.oversized)));
    gw.Set("timeouts", JsonValue::Number(static_cast<double>(s.timeouts)));
    gw.Set("backend_errors",
           JsonValue::Number(static_cast<double>(s.backend_errors)));
    out.Set("gateway", std::move(gw));
    if (!response.ok()) {
      backend_errors_.fetch_add(1, std::memory_order_relaxed);
      out.Set("status", JsonValue::Str("ERROR"));
      out.Set("error", JsonValue::Str("daemon unreachable: " +
                                      response.status().ToString()));
      return Send(fd, 503, out.Dump(), keep_alive);
    }
    auto decoded = DecodeServerStatsResult(response->body);
    if (response->code != ResponseCode::kOk || !decoded.ok()) {
      out.Set("status", JsonValue::Str(ResponseCodeName(response->code)));
      out.Set("error", JsonValue::Str(response->message));
      return Send(fd, HttpStatusForResponseCode(response->code), out.Dump(),
                  keep_alive);
    }
    const ServerStatsResult& d = *decoded;
    JsonValue daemon = JsonValue::Object();
    auto num = [](uint64_t v) {
      return JsonValue::Number(static_cast<double>(v));
    };
    daemon.Set("workers", num(d.workers));
    daemon.Set("uptime_seconds", JsonValue::Number(d.uptime_seconds));
    daemon.Set("accepted", num(d.accepted));
    daemon.Set("served", num(d.served));
    daemon.Set("served_http", num(d.served_http));
    daemon.Set("busy_rejected", num(d.busy_rejected));
    daemon.Set("quota_rejected", num(d.quota_rejected));
    daemon.Set("quota_rejected_http", num(d.quota_rejected_http));
    daemon.Set("shed", num(d.shed));
    daemon.Set("shed_http", num(d.shed_http));
    daemon.Set("quarantined", num(d.quarantined));
    daemon.Set("quarantined_signatures", num(d.quarantined_signatures));
    daemon.Set("watchdog_kills", num(d.watchdog_kills));
    daemon.Set("queue_depth", num(d.queue_depth));
    daemon.Set("in_flight", num(d.in_flight));
    daemon.Set("batches", num(d.batches));
    daemon.Set("batch_jobs", num(d.batch_jobs));
    daemon.Set("batch_cache_hits", num(d.batch_cache_hits));
    daemon.Set("batch_graph_loads", num(d.batch_graph_loads));
    daemon.Set("jobs_submitted", num(d.jobs_submitted));
    daemon.Set("jobs_deduped", num(d.jobs_deduped));
    daemon.Set("jobs_done", num(d.jobs_done));
    daemon.Set("jobs_failed", num(d.jobs_failed));
    daemon.Set("jobs_cancelled", num(d.jobs_cancelled));
    daemon.Set("jobs_executions", num(d.jobs_executions));
    daemon.Set("jobs_recovered", num(d.jobs_recovered));
    daemon.Set("jobs_pending", num(d.jobs_pending));
    daemon.Set("cache_replayed", num(d.cache_replayed));
    daemon.Set("store_puts", num(d.store_puts));
    daemon.Set("store_gets", num(d.store_gets));
    daemon.Set("store_corrupt", num(d.store_corrupt));
    daemon.Set("store_missing", num(d.store_missing));
    daemon.Set("store_unavailable", num(d.store_unavailable));
    out.Set("daemon", std::move(daemon));
    out.Set("status", JsonValue::Str("OK"));
    return Send(fd, 200, out.Dump(), keep_alive);
  }

  bool HandlePutGraph(int fd, const HttpRequest& request, bool keep_alive) {
    auto parsed = ParseJson(request.body);
    if (!parsed.ok()) {
      return BadJson(fd, parsed.status().ToString(), keep_alive);
    }
    Request req;
    req.type = RequestType::kPutGraph;
    std::string err;
    if (!ParseClient(*parsed, &req.client, &err) ||
        !ParseWireGraphJson(*parsed, &req.put_graph.g, &err)) {
      return BadJson(fd, err, keep_alive);
    }
    auto response = CallBackend(std::move(req));
    if (!response.ok()) return BackendDown(fd, response.status(), keep_alive);
    JsonValue body = JsonValue::Object();
    if (response->code == ResponseCode::kOk) {
      auto result = DecodePutGraphResult(response->body);
      if (result.ok()) {
        body.Set("hash", JsonValue::Str(GraphStore::HashName(
                             result->content_hash)));
        body.Set("already_present", JsonValue::Bool(result->already_present));
      }
    }
    return SendDaemonResponse(fd, *response, std::move(body), keep_alive);
  }

  bool HandleHasGraph(int fd, const std::string& hash_name, bool keep_alive) {
    auto hash = GraphStore::ParseHashName(hash_name);
    if (!hash.ok()) {
      return BadJson(fd, hash.status().ToString(), keep_alive);
    }
    Request req;
    req.type = RequestType::kHasGraph;
    req.has_graph.hash = *hash;
    auto response = CallBackend(std::move(req));
    if (!response.ok()) return BackendDown(fd, response.status(), keep_alive);
    JsonValue body = JsonValue::Object();
    body.Set("hash", JsonValue::Str(hash_name));
    bool present = false;
    if (response->code == ResponseCode::kOk) {
      auto result = DecodeHasGraphResult(response->body);
      present = result.ok() && result->present;
      body.Set("present", JsonValue::Bool(present));
      if (!present) {
        // An absent graph is a 404 with a well-formed body, mirroring
        // NO_GRAPH on the align path.
        body.Set("status", JsonValue::Str("NO_GRAPH"));
        return Send(fd, 404, body.Dump(), keep_alive);
      }
    }
    return SendDaemonResponse(fd, *response, std::move(body), keep_alive);
  }

  bool HandleAlign(int fd, const HttpRequest& request, bool keep_alive) {
    auto parsed = ParseJson(request.body);
    if (!parsed.ok()) {
      return BadJson(fd, parsed.status().ToString(), keep_alive);
    }
    Request req;
    std::string err;
    if (!BuildAlignRequest(*parsed, &req, &err)) {
      return BadJson(fd, err, keep_alive);
    }
    auto response = CallBackend(std::move(req));
    if (!response.ok()) return BackendDown(fd, response.status(), keep_alive);
    JsonValue body = JsonValue::Object();
    if (response->code == ResponseCode::kOk) {
      auto result = DecodeAlignResult(response->body);
      if (result.ok()) body = AlignResultJson(*result);
    }
    return SendDaemonResponse(fd, *response, std::move(body), keep_alive);
  }

  // POST /v1/jobs: the /v1/align JSON schema plus an optional "idem_key"
  // string. Accepted (or deduplicated) jobs come back 202 with the job
  // envelope; poll GET /v1/jobs/<id> for completion.
  bool HandleSubmitJob(int fd, const HttpRequest& request, bool keep_alive) {
    auto parsed = ParseJson(request.body);
    if (!parsed.ok()) {
      return BadJson(fd, parsed.status().ToString(), keep_alive);
    }
    Request req;
    std::string err;
    if (!BuildAlignRequest(*parsed, &req, &err)) {
      return BadJson(fd, err, keep_alive);
    }
    // Re-target the parsed align at the async surface.
    req.type = RequestType::kSubmitJob;
    req.submit_job.align = std::move(req.align);
    req.align = AlignRequest{};
    if (parsed->Has("idem_key")) {
      if (!parsed->Get("idem_key").is_string() ||
          parsed->Get("idem_key").AsString().empty() ||
          parsed->Get("idem_key").AsString().size() > kMaxNameLen) {
        return BadJson(fd, "\"idem_key\" must be a short non-empty string",
                       keep_alive);
      }
      req.submit_job.idem_key = parsed->Get("idem_key").AsString();
    }
    auto response = CallBackend(std::move(req));
    if (!response.ok()) return BackendDown(fd, response.status(), keep_alive);
    JsonValue body = JsonValue::Object();
    if (response->code == ResponseCode::kAccepted) {
      auto info = DecodeJobInfo(response->body);
      if (info.ok()) body = JobInfoJson(*info);
    }
    return SendDaemonResponse(fd, *response, std::move(body), keep_alive);
  }

  // GET /v1/jobs/<16hex>: the job envelope; once the job is DONE the
  // response embeds the alignment result under "result", so one poll
  // both observes completion and retrieves the mapping.
  bool HandleJobStatus(int fd, const std::string& id_name, bool keep_alive) {
    auto id = GraphStore::ParseHashName(id_name);
    if (!id.ok()) {
      return BadJson(fd, "job id must be 16 hex digits: " + id_name,
                     keep_alive);
    }
    Request req;
    req.type = RequestType::kJobStatus;
    req.job_id.job_id = *id;
    auto response = CallBackend(std::move(req));
    if (!response.ok()) return BackendDown(fd, response.status(), keep_alive);
    JsonValue body = JsonValue::Object();
    if (response->code == ResponseCode::kOk) {
      auto info = DecodeJobInfo(response->body);
      if (info.ok()) {
        body = JobInfoJson(*info);
        if (static_cast<JobState>(info->state) == JobState::kDone) {
          Request result_req;
          result_req.type = RequestType::kJobResult;
          result_req.job_id.job_id = *id;
          auto result = CallBackend(std::move(result_req));
          if (result.ok() && result->code == ResponseCode::kOk) {
            auto align = DecodeAlignResult(result->body);
            if (align.ok()) body.Set("result", AlignResultJson(*align));
          }
        }
      }
    }
    return SendDaemonResponse(fd, *response, std::move(body), keep_alive);
  }

  // DELETE /v1/jobs/<16hex>: cancel. 200 with the (now CANCELLED)
  // envelope, 404 for an unknown id, 409 when the job already finished.
  bool HandleCancelJob(int fd, const std::string& id_name, bool keep_alive) {
    auto id = GraphStore::ParseHashName(id_name);
    if (!id.ok()) {
      return BadJson(fd, "job id must be 16 hex digits: " + id_name,
                     keep_alive);
    }
    Request req;
    req.type = RequestType::kCancelJob;
    req.job_id.job_id = *id;
    auto response = CallBackend(std::move(req));
    if (!response.ok()) return BackendDown(fd, response.status(), keep_alive);
    JsonValue body = JsonValue::Object();
    if (response->code == ResponseCode::kOk) {
      auto info = DecodeJobInfo(response->body);
      if (info.ok()) body = JobInfoJson(*info);
    }
    return SendDaemonResponse(fd, *response, std::move(body), keep_alive);
  }

  bool HandleAlignBatch(int fd, const HttpRequest& request, bool keep_alive) {
    auto parsed = ParseJson(request.body);
    if (!parsed.ok()) {
      return BadJson(fd, parsed.status().ToString(), keep_alive);
    }
    Request req;
    std::string err;
    if (!BuildBatchRequest(*parsed, &req, &err)) {
      return BadJson(fd, err, keep_alive);
    }
    auto response = CallBackend(std::move(req));
    if (!response.ok()) return BackendDown(fd, response.status(), keep_alive);
    JsonValue body = JsonValue::Object();
    auto result = DecodeAlignBatchResult(response->body);
    if (result.ok()) {
      body.Set("graph_loads",
               JsonValue::Number(static_cast<double>(result->graph_loads)));
      JsonValue jobs = JsonValue::Array();
      for (const BatchJobOutcome& out : result->jobs) {
        JsonValue job = JsonValue::Object();
        if (out.code == ResponseCode::kOk) {
          auto align = DecodeAlignResult(out.body);
          if (align.ok()) job = AlignResultJson(*align);
        }
        job.Set("status", JsonValue::Str(ResponseCodeName(out.code)));
        job.Set("cache_hit", JsonValue::Bool(out.cache_hit));
        if (!out.message.empty()) {
          job.Set("error", JsonValue::Str(out.message));
        }
        jobs.Push(std::move(job));
      }
      body.Set("jobs", std::move(jobs));
    }
    return SendDaemonResponse(fd, *response, std::move(body), keep_alive);
  }

  const GatewayOptions options_;
  int listen_fd_ = -1;
  int bound_port_ = -1;

  std::atomic<bool> stopping_{false};
  mutable std::mutex mu_;
  std::condition_variable queue_cv_;
  std::deque<int> queue_;
  std::unordered_set<int> active_fds_;
  std::vector<std::thread> threads_;

  std::atomic<uint64_t> connections_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> rejected_overload_{0};
  std::atomic<uint64_t> bad_requests_{0};
  std::atomic<uint64_t> oversized_{0};
  std::atomic<uint64_t> timeouts_{0};
  std::atomic<uint64_t> backend_errors_{0};
};

Gateway::Gateway(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
Gateway::~Gateway() = default;

Result<std::unique_ptr<Gateway>> Gateway::Create(
    const GatewayOptions& options) {
  auto impl = std::make_unique<Impl>(options);
  GA_RETURN_IF_ERROR(impl->Bind());
  return std::unique_ptr<Gateway>(new Gateway(std::move(impl)));
}

Status Gateway::Start() { return impl_->Start(); }
void Gateway::Shutdown() { impl_->Shutdown(); }
void Gateway::Wait() { impl_->Wait(); }
int Gateway::port() const { return impl_->port(); }
GatewayStats Gateway::stats() const { return impl_->stats(); }

}  // namespace graphalign
