// Figure 2: Accuracy, S3, and MNC on Erdos-Renyi random graphs (p = 0.009
// at paper scale; density preserved in smoke mode), three noise types,
// noise up to 5% (paper §6.3).
#include "figure_synthetic.h"
#include "graph/generators.h"

int main(int argc, char** argv) {
  return graphalign::bench::RunSyntheticFigure(
      "Figure 2", "Erdos-Renyi",
      [](int n, graphalign::Rng* rng) {
        // p = 0.009 at n = 1133 gives avg degree ~10.2; keep that density.
        const double p = 0.009 * 1133 / n;
        return graphalign::ErdosRenyi(n, p, rng);
      },
      argc, argv);
}
