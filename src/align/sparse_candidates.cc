#include "align/sparse_candidates.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>

#include "common/parallel.h"
#include "graph/graphlets.h"
#include "linalg/minhash.h"

namespace graphalign {

namespace {

// Token layout: kind in the top byte, two 28-bit payload fields. Distinct
// kinds can never collide as integers, so one flat set carries them all.
constexpr uint64_t Token(uint64_t kind, uint64_t a, uint64_t b) {
  constexpr uint64_t kMask = (1ULL << 28) - 1;
  return (kind << 56) | ((a & kMask) << 28) | (b & kMask);
}

// log2-style bucket: 0 for 0, floor(log2(v)) + 1 otherwise. Values that
// differ by less than 2x share a bucket, which is what makes the tokens
// robust to the paper's 1-25% edge noise.
int LogBucket(int64_t v) {
  if (v <= 0) return 0;
  int b = 1;
  while (v > 1) {
    v >>= 1;
    ++b;
  }
  return b;
}

// Multiset counts enter the token *set* as capped unary runs: a bucket with
// count c contributes tokens (bucket, 0..min(c,kCountCap)-1), so Jaccard
// still sees "how many", not just "whether".
constexpr int kCountCap = 16;

}  // namespace

std::vector<uint64_t> NodeTokens(const Graph& g, int u,
                                 const double* orbit_row) {
  std::vector<uint64_t> tokens;
  const auto neighbors = g.Neighbors(u);
  tokens.reserve(8 + 2 * neighbors.size());

  // Kind 0/1: own degree, coarse and exact. The exact token sharpens
  // discrimination on heavy-tailed graphs; the bucket token keeps a noisy
  // copy of the same node similar.
  const int deg = g.Degree(u);
  tokens.push_back(Token(0, LogBucket(deg), 0));
  tokens.push_back(Token(1, static_cast<uint64_t>(deg), 0));

  // Kind 2: neighborhood degree histogram in log buckets, counts as capped
  // unary runs. Permutation-invariant by construction.
  int64_t volume = 0;
  int hist[64] = {0};
  for (const int v : neighbors) {
    const int dv = g.Degree(v);
    volume += dv;
    ++hist[LogBucket(dv) & 63];
  }
  for (int b = 0; b < 64; ++b) {
    const int c = std::min(hist[b], kCountCap);
    for (int i = 0; i < c; ++i) {
      tokens.push_back(Token(2, b, static_cast<uint64_t>(i)));
    }
  }

  // Kind 3: 2-hop volume bucket (sum of neighbor degrees) — a cheap proxy
  // for the size of the 2-hop neighborhood.
  tokens.push_back(Token(3, LogBucket(volume), 0));

  // Kind 4: graphlet orbit counts (log-bucketed), when the caller paid for
  // them.
  if (orbit_row != nullptr) {
    for (int o = 0; o < kNumOrbits; ++o) {
      tokens.push_back(
          Token(4, o, LogBucket(static_cast<int64_t>(orbit_row[o]))));
    }
  }

  std::sort(tokens.begin(), tokens.end());
  tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
  return tokens;
}

namespace {

// Signatures for all nodes of one graph: n rows of num_hashes values,
// disjoint rows per ParallelFor block (deterministic at any thread count).
std::vector<uint64_t> BuildSignatures(const Graph& g, const MinHasher& hasher,
                                      const DenseMatrix* orbits) {
  const int n = g.num_nodes();
  const int width = hasher.num_hashes();
  std::vector<uint64_t> sig(static_cast<size_t>(n) * width);
  ParallelFor(n, [&](int64_t lo, int64_t hi) {
    for (int u = static_cast<int>(lo); u < hi; ++u) {
      const double* orbit_row = orbits ? orbits->Row(u) : nullptr;
      const std::vector<uint64_t> tokens = NodeTokens(g, u, orbit_row);
      hasher.Signature(tokens, sig.data() + static_cast<size_t>(u) * width);
    }
  }, /*min_work=*/64);
  return sig;
}

}  // namespace

Result<std::vector<SparseCandidate>> GenerateLshCandidates(
    const Graph& g1, const Graph& g2, const LshOptions& options,
    const Deadline& deadline, LshStats* stats) {
  if (options.bands < 1 || options.rows_per_band < 1 ||
      options.max_bucket < 1) {
    return Status::InvalidArgument(
        "LSH: bands, rows_per_band and max_bucket must be positive");
  }
  if (options.bands * options.rows_per_band > 4096) {
    return Status::InvalidArgument(
        "LSH: bands * rows_per_band must be <= 4096");
  }
  LshStats local;
  const int n1 = g1.num_nodes();
  const int n2 = g2.num_nodes();

  DenseMatrix orbits1, orbits2;
  if (options.use_graphlets) {
    GA_ASSIGN_OR_RETURN(orbits1, CountGraphletOrbits(
                                     g1, /*max_subgraphs=*/200'000'000,
                                     deadline));
    GA_ASSIGN_OR_RETURN(orbits2, CountGraphletOrbits(
                                     g2, /*max_subgraphs=*/200'000'000,
                                     deadline));
  }

  const int width = options.bands * options.rows_per_band;
  const MinHasher hasher(width, options.seed);
  GA_RETURN_IF_EXPIRED(deadline, "LSH signatures");
  const std::vector<uint64_t> sig1 =
      BuildSignatures(g1, hasher, options.use_graphlets ? &orbits1 : nullptr);
  GA_RETURN_IF_EXPIRED(deadline, "LSH signatures");
  const std::vector<uint64_t> sig2 =
      BuildSignatures(g2, hasher, options.use_graphlets ? &orbits2 : nullptr);

  // Banded join: bucket both node sets by the band key and emit all cross
  // pairs of small-enough buckets. Keys are sorted (key, node), so bucket
  // order and pair order are canonical regardless of thread count.
  std::vector<std::pair<int, int>> pairs;
  std::vector<std::pair<uint64_t, int>> keys1(n1), keys2(n2);
  for (int b = 0; b < options.bands; ++b) {
    GA_RETURN_IF_EXPIRED(deadline, "LSH banding");
    const uint64_t band_seed = Mix64(options.seed ^ (0xBAD5EEDULL + b));
    const int offset = b * options.rows_per_band;
    ParallelFor(n1, [&](int64_t lo, int64_t hi) {
      for (int u = static_cast<int>(lo); u < hi; ++u) {
        keys1[u] = {BandKey(sig1.data() + static_cast<size_t>(u) * width +
                                offset,
                            options.rows_per_band, band_seed),
                    u};
      }
    }, /*min_work=*/1024);
    ParallelFor(n2, [&](int64_t lo, int64_t hi) {
      for (int v = static_cast<int>(lo); v < hi; ++v) {
        keys2[v] = {BandKey(sig2.data() + static_cast<size_t>(v) * width +
                                offset,
                            options.rows_per_band, band_seed),
                    v};
      }
    }, /*min_work=*/1024);
    std::sort(keys1.begin(), keys1.end());
    std::sort(keys2.begin(), keys2.end());

    size_t i = 0, j = 0;
    while (i < keys1.size() && j < keys2.size()) {
      const uint64_t k1 = keys1[i].first, k2 = keys2[j].first;
      if (k1 < k2) {
        ++i;
        continue;
      }
      if (k2 < k1) {
        ++j;
        continue;
      }
      size_t i_end = i, j_end = j;
      while (i_end < keys1.size() && keys1[i_end].first == k1) ++i_end;
      while (j_end < keys2.size() && keys2[j_end].first == k1) ++j_end;
      if (i_end - i > static_cast<size_t>(options.max_bucket) ||
          j_end - j > static_cast<size_t>(options.max_bucket)) {
        ++local.skipped_buckets;
      } else {
        for (size_t a = i; a < i_end; ++a) {
          for (size_t c = j; c < j_end; ++c) {
            pairs.emplace_back(keys1[a].second, keys2[c].second);
          }
        }
      }
      i = i_end;
      j = j_end;
    }
  }

  GA_RETURN_IF_EXPIRED(deadline, "LSH dedup");
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());

  std::vector<SparseCandidate> candidates;
  candidates.reserve(pairs.size());
  std::vector<char> covered(n1, 0);
  for (const auto& [row, col] : pairs) {
    candidates.push_back({row, col, 0.0});
    covered[row] = 1;
  }
  local.candidates = static_cast<int64_t>(candidates.size());
  for (int u = 0; u < n1; ++u) {
    if (!covered[u]) ++local.rows_without_candidates;
  }
  if (stats != nullptr) *stats = local;
  return candidates;
}

}  // namespace graphalign
