#!/usr/bin/env bash
# End-to-end exercise of the HTTP/JSON gateway (DESIGN.md §16), speaking raw
# HTTP over bash /dev/tcp — no curl, so the test runs on a bare container:
#   1. serve --http-port 0 brings up daemon + gateway on one process;
#      GET /healthz answers 200 "ok",
#   2. POST /v1/graphs uploads the pair; the content hashes must be
#      identical to what `submit --put-graph` answers over GAF1, and
#      GET /v1/graphs/<hash> answers 200 present / 404 NO_GRAPH,
#   3. POST /v1/align by hash must produce a mapping byte-identical to the
#      CLI `submit --out` mapping of the same pair (HTTP is a transport,
#      not a different aligner),
#   4. POST /v1/align:batch with K jobs over the two store graphs must
#      report graph_loads <= 2 and move daemon store_gets by <= 2 — the
#      amortization contract (K jobs != 2K opens),
#   5. loadgen --http-port drives mixed GAF1+HTTP+batch traffic and writes
#      the BENCH-convention gateway report.
#
# Usage: tools/run_gateway_smoke.sh [graphalign-binary] [loadgen-binary]
#        [bench-json]
# The optional third argument is where the loadgen report lands (default:
# scratch); pass BENCH_gateway.json to refresh the checked-in copy.
set -euo pipefail

TOOL="${1:-build/src/cli/graphalign}"
LOADGEN="${2:-build/src/loadgen}"
if [[ ! -x "$TOOL" ]]; then
  echo "graphalign binary not found: $TOOL (build it first)" >&2
  exit 1
fi
if [[ ! -x "$LOADGEN" ]]; then
  echo "loadgen binary not found: $LOADGEN (build it first)" >&2
  exit 1
fi
TOOL="$(cd "$(dirname "$TOOL")" && pwd)/$(basename "$TOOL")"
LOADGEN="$(cd "$(dirname "$LOADGEN")" && pwd)/$(basename "$LOADGEN")"

WORK="$(mktemp -d)"
BENCH_JSON="${3:-$WORK/BENCH_gateway.json}"
case "$BENCH_JSON" in
  /*) ;;
  *) BENCH_JSON="$PWD/$BENCH_JSON" ;;
esac
STORE="$WORK/store"
SOCK="$WORK/ga.sock"
DAEMON_PID=""
cleanup() {
  if [[ -n "$DAEMON_PID" ]] && kill -0 "$DAEMON_PID" 2> /dev/null; then
    kill "$DAEMON_PID" 2> /dev/null || true
    wait "$DAEMON_PID" 2> /dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

# http METHOD TARGET [BODY-FILE] -> whole raw response on stdout. One
# connection per request, Connection: close, read to EOF.
http() {
  local method="$1" target="$2" body="${3:-}"
  exec 3<> "/dev/tcp/127.0.0.1/$HTTP_PORT"
  if [[ -n "$body" ]]; then
    local len
    len="$(wc -c < "$body")"
    {
      printf '%s %s HTTP/1.1\r\nHost: smoke\r\nConnection: close\r\n' \
        "$method" "$target"
      printf 'Content-Type: application/json\r\nContent-Length: %s\r\n\r\n' \
        "$len"
      cat "$body"
    } >&3
  else
    printf '%s %s HTTP/1.1\r\nHost: smoke\r\nConnection: close\r\n\r\n' \
      "$method" "$target" >&3
  fi
  cat <&3
  exec 3<&- 3>&-
}

# json_body RESPONSE-FILE -> the JSON body (everything past the header).
json_body() {
  python3 -c '
import sys
raw = open(sys.argv[1], "rb").read()
sys.stdout.write(raw.split(b"\r\n\r\n", 1)[1].decode())' "$1"
}

expect_status() {  # expect_status FILE CODE WHAT
  head -1 "$1" | grep -q "HTTP/1.1 $2 " || {
    echo "$3: expected HTTP $2, got: $(head -1 "$1")" >&2
    cat "$1" >&2
    exit 1
  }
}

echo "== 0/5 materialize a graph pair =="
"$TOOL" generate --model er --n 60 --p 0.08 --seed 21 --out "$WORK/s1.txt"
"$TOOL" perturb --in "$WORK/s1.txt" --noise one-way --level 0.05 --seed 22 \
  --out "$WORK/s2.txt"
# The gateway's inline-graph JSON for each edge list (n = max endpoint + 1,
# matching the CLI's edge-list reader).
for g in s1 s2; do
  python3 - "$WORK/$g.txt" > "$WORK/$g.json" <<'EOF'
import json, sys
edges = [tuple(map(int, line.split())) for line in open(sys.argv[1])
         if line.strip()]
n = max(max(e) for e in edges) + 1
json.dump({"n": n, "edges": [list(e) for e in edges]}, sys.stdout)
EOF
done

echo "== 1/5 serve --http-port: daemon + gateway, healthz =="
"$TOOL" serve --socket "$SOCK" --workers 2 --store-dir "$STORE" \
  --http-port 0 > "$WORK/daemon.log" 2>&1 &
DAEMON_PID=$!
up=0
for _ in 1 2 3; do
  if "$TOOL" submit --socket "$SOCK" --ping --retries 4 > /dev/null 2>&1; then
    up=1
    break
  fi
  kill -0 "$DAEMON_PID" 2> /dev/null || break
done
if [[ "$up" != 1 ]]; then
  echo "daemon never came up (or died during startup):" >&2
  cat "$WORK/daemon.log" >&2
  exit 1
fi
# The daemon socket answers pings before the gateway line is flushed to
# the log; poll briefly for the announced port.
HTTP_PORT=""
for _ in $(seq 1 50); do
  HTTP_PORT="$(sed -n 's/.*gateway serving on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
    "$WORK/daemon.log" | head -1)"
  [[ -n "$HTTP_PORT" ]] && break
  sleep 0.1
done
if [[ -z "$HTTP_PORT" ]]; then
  echo "gateway port not announced in the daemon log:" >&2
  cat "$WORK/daemon.log" >&2
  exit 1
fi
http GET /healthz > "$WORK/healthz.out"
expect_status "$WORK/healthz.out" 200 healthz
grep -q "^ok" "$WORK/healthz.out" || {
  echo "healthz body is not 'ok':" >&2
  cat "$WORK/healthz.out" >&2
  exit 1
}
echo "gateway up on 127.0.0.1:$HTTP_PORT; healthz ok"

echo "== 2/5 graph upload: HTTP and GAF1 agree on content hashes =="
http POST /v1/graphs "$WORK/s1.json" > "$WORK/put1.out"
http POST /v1/graphs "$WORK/s2.json" > "$WORK/put2.out"
expect_status "$WORK/put1.out" 200 put-graph
expect_status "$WORK/put2.out" 200 put-graph
H1="$(json_body "$WORK/put1.out" | python3 -c \
  'import json,sys; print(json.load(sys.stdin)["hash"])')"
H2="$(json_body "$WORK/put2.out" | python3 -c \
  'import json,sys; print(json.load(sys.stdin)["hash"])')"
"$TOOL" submit --socket "$SOCK" --put-graph "$WORK/s1.txt" > "$WORK/cli1.out"
"$TOOL" submit --socket "$SOCK" --put-graph "$WORK/s2.txt" > "$WORK/cli2.out"
C1="$(sed -n 's/.*hash=\([0-9a-f]*\).*/\1/p' "$WORK/cli1.out" | head -1)"
C2="$(sed -n 's/.*hash=\([0-9a-f]*\).*/\1/p' "$WORK/cli2.out" | head -1)"
if [[ "$H1" != "$C1" || "$H2" != "$C2" ]]; then
  echo "HTTP and CLI disagree on content hashes: $H1/$H2 vs $C1/$C2" >&2
  exit 1
fi
http GET "/v1/graphs/$H1" > "$WORK/has.out"
expect_status "$WORK/has.out" 200 has-graph
http GET /v1/graphs/0123456789abcdef > "$WORK/hasnot.out"
expect_status "$WORK/hasnot.out" 404 has-graph-absent
json_body "$WORK/hasnot.out" | grep -q '"NO_GRAPH"' || {
  echo "404 body is not a typed NO_GRAPH:" >&2
  cat "$WORK/hasnot.out" >&2
  exit 1
}
echo "uploaded $H1 / $H2; present=200, absent=404 NO_GRAPH"

echo "== 3/5 align by hash: HTTP mapping == CLI mapping, byte for byte =="
printf '{"g1_hash":"%s","g2_hash":"%s","algo":"GRASP","assign":"JV"}' \
  "$H1" "$H2" > "$WORK/align.json"
http POST /v1/align "$WORK/align.json" > "$WORK/align.out"
expect_status "$WORK/align.out" 200 align
json_body "$WORK/align.out" > "$WORK/align.body"
python3 - "$WORK/align.body" > "$WORK/http.map" <<'EOF'
import json, sys
body = json.load(open(sys.argv[1]))
assert body["status"] == "OK", body
for u, v in enumerate(body["mapping"]):
    if v >= 0:
        print(u, v)
EOF
"$TOOL" submit --socket "$SOCK" --g1-hash "$H1" --g2-hash "$H2" \
  --algo GRASP --no-cache --out "$WORK/cli.map" > /dev/null
cmp -s "$WORK/http.map" "$WORK/cli.map" || {
  echo "HTTP mapping differs from the CLI submit mapping" >&2
  diff "$WORK/http.map" "$WORK/cli.map" >&2 || true
  exit 1
}
echo "HTTP /v1/align mapping is byte-identical to submit --out"

echo "== 4/5 batch: K jobs over two store graphs, <= 2 graph opens =="
gets_before="$(http GET /stats | sed -n '/^{/,$p' | python3 -c \
  'import json,sys; print(int(json.load(sys.stdin)["daemon"]["store_gets"]))')"
printf '{"graphs":[{"hash":"%s"},{"hash":"%s"}],"jobs":[%s]}' "$H1" "$H2" \
  '{"g1":0,"g2":1,"algo":"NSD"},{"g1":0,"g2":1,"algo":"NSD"},{"g1":0,"g2":1,"algo":"NSD"},{"g1":0,"g2":1,"algo":"LREA"}' \
  > "$WORK/batch.json"
http POST /v1/align:batch "$WORK/batch.json" > "$WORK/batch.out"
expect_status "$WORK/batch.out" 200 batch
gets_after="$(http GET /stats | sed -n '/^{/,$p' | python3 -c \
  'import json,sys; print(int(json.load(sys.stdin)["daemon"]["store_gets"]))')"
json_body "$WORK/batch.out" > "$WORK/batch.body"
python3 - "$WORK/batch.body" "$gets_before" "$gets_after" <<'EOF'
import json, sys
body = json.load(open(sys.argv[1]))
assert body["status"] == "OK", body
jobs = body["jobs"]
assert len(jobs) == 4, body
assert all(j["status"] == "OK" for j in jobs), jobs
loads = body["graph_loads"]
assert loads <= 2, f"batch resolved {loads} graphs for 4 jobs (expected <= 2)"
delta = int(sys.argv[3]) - int(sys.argv[2])
assert delta <= 2, f"store_gets moved by {delta} for a 4-job batch"
hits = sum(1 for j in jobs if j["cache_hit"])
print(f"  4 jobs: graph_loads={loads}, store_gets +{delta}, "
      f"{hits} in-batch cache hits")
EOF
echo "batch amortization holds: 4 jobs cost at most 2 graph opens"

echo "== 5/5 loadgen --http-port: mixed GAF1+HTTP+batch traffic =="
"$LOADGEN" --socket "$SOCK" --http-port "$HTTP_PORT" --clients 4 \
  --requests 25 --mix hit:5,miss:2,batch:2,poison:1 --nodes 40 \
  --json "$BENCH_JSON" > "$WORK/loadgen.out"
tail -2 "$WORK/loadgen.out"
grep -q "@http" "$WORK/loadgen.out" || {
  echo "loadgen report has no HTTP rows:" >&2
  cat "$WORK/loadgen.out" >&2
  exit 1
}

"$TOOL" submit --socket "$SOCK" --shutdown > /dev/null
wait "$DAEMON_PID" 2> /dev/null || true
DAEMON_PID=""
echo "gateway smoke test passed"
