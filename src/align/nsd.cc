#include "align/nsd.h"

#include <cmath>
#include <vector>

#include "linalg/csr.h"

namespace graphalign {

namespace {

// Adds s * z w^T to x.
void AddOuterProduct(double s, const std::vector<double>& z,
                     const std::vector<double>& w, DenseMatrix* x) {
  for (int i = 0; i < x->rows(); ++i) {
    const double zi = s * z[i];
    if (zi == 0.0) continue;
    double* row = x->Row(i);
    for (int j = 0; j < x->cols(); ++j) row[j] += zi * w[j];
  }
}

std::vector<double> UnitSum(std::vector<double> v) {
  double s = 0.0;
  for (double x : v) s += x;
  if (s > 0.0) {
    for (double& x : v) x /= s;
  }
  return v;
}

}  // namespace

Result<std::vector<NsdAligner::Term>> NsdAligner::ComputeTerms(
    const Graph& g1, const Graph& g2, const Deadline& deadline) const {
  GA_RETURN_IF_ERROR(ValidateInputs(g1, g2));
  if (options_.alpha < 0.0 || options_.alpha > 1.0) {
    return Status::InvalidArgument("NSD: alpha outside [0,1]");
  }
  if (options_.iterations < 1) {
    return Status::InvalidArgument("NSD: iterations must be >= 1");
  }
  const int n1 = g1.num_nodes();
  const int n2 = g2.num_nodes();
  const CsrMatrix rw1 = g1.RandomWalkCsr();
  const CsrMatrix rw2 = g2.RandomWalkCsr();

  // Unrestricted components: uniform and degree (both normalized to unit
  // mass so the components are comparable).
  std::vector<std::vector<double>> z0;
  std::vector<std::vector<double>> w0;
  z0.push_back(UnitSum(std::vector<double>(n1, 1.0)));
  w0.push_back(UnitSum(std::vector<double>(n2, 1.0)));
  std::vector<double> d1(n1), d2(n2);
  for (int u = 0; u < n1; ++u) d1[u] = g1.Degree(u);
  for (int v = 0; v < n2; ++v) d2[v] = g2.Degree(v);
  z0.push_back(UnitSum(std::move(d1)));
  w0.push_back(UnitSum(std::move(d2)));

  const double alpha = options_.alpha;
  const int depth = options_.iterations;
  std::vector<Term> terms;
  terms.reserve(z0.size() * (depth + 1));
  for (size_t comp = 0; comp < z0.size(); ++comp) {
    std::vector<double> z = z0[comp];
    std::vector<double> w = w0[comp];
    double coeff = 1.0 - alpha;  // (1-a) * a^k for k = 0.
    for (int k = 0; k < depth; ++k) {
      GA_RETURN_IF_EXPIRED(deadline, "NSD");
      terms.push_back({coeff, z, w});
      // Advance the power iteration: z <- A~ z, w <- B~ w (Eq. 3-4).
      z = rw1.Multiply(z);
      w = rw2.Multiply(w);
      coeff *= alpha;
    }
    // Tail term a^n z^(n) w^(n)^T.
    terms.push_back({std::pow(alpha, depth), std::move(z), std::move(w)});
  }
  return terms;
}

Result<DenseMatrix> NsdAligner::ComputeSimilarityImpl(
    const Graph& g1, const Graph& g2, const Deadline& deadline) {
  GA_ASSIGN_OR_RETURN(std::vector<Term> terms,
                      ComputeTerms(g1, g2, deadline));
  DenseMatrix x(g1.num_nodes(), g2.num_nodes());
  for (const Term& t : terms) {
    GA_RETURN_IF_EXPIRED(deadline, "NSD");
    AddOuterProduct(t.coeff, t.z, t.w, &x);
  }
  return x;
}

Status NsdAligner::ScoreSparseCandidatesImpl(
    const Graph& g1, const Graph& g2, const Deadline& deadline,
    std::vector<SparseCandidate>* candidates) {
  GA_ASSIGN_OR_RETURN(std::vector<Term> terms,
                      ComputeTerms(g1, g2, deadline));
  for (SparseCandidate& c : *candidates) {
    double sim = 0.0;
    for (const Term& t : terms) {
      sim += t.coeff * t.z[c.row] * t.w[c.col];
    }
    c.similarity = sim;
  }
  return Status::Ok();
}

}  // namespace graphalign
