// Tests for the exact 5-node graphlet-orbit counter and the full 73-orbit
// graphlet degree vector used by GRAAL's published signature.
#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "align/graal.h"
#include "common/random.h"
#include "graph/generators.h"
#include "graph/graphlets.h"

namespace graphalign {
namespace {

Graph MustGraph(int n, const std::vector<Edge>& edges) {
  auto g = Graph::FromEdges(n, edges);
  GA_CHECK(g.ok());
  return *std::move(g);
}

TEST(Graphlets5Test, PathP5HasTwoEndTwoMidOneCenterOrbit) {
  // 0-1-2-3-4 path: orbits {ends}, {next-to-ends}, {center}.
  Graph g = MustGraph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  auto orbits = CountGraphletOrbits5(g);
  ASSERT_TRUE(orbits.ok());
  // Each node participates in exactly one 5-node subgraph (the path itself).
  std::vector<int> orbit_of(5, -1);
  for (int v = 0; v < 5; ++v) {
    double total = 0.0;
    for (int o = 0; o < kNumOrbits5; ++o) {
      total += (*orbits)(v, o);
      if ((*orbits)(v, o) > 0) orbit_of[v] = o;
    }
    EXPECT_DOUBLE_EQ(total, 1.0);
  }
  EXPECT_EQ(orbit_of[0], orbit_of[4]);  // Ends share an orbit.
  EXPECT_EQ(orbit_of[1], orbit_of[3]);  // Next-to-ends share an orbit.
  EXPECT_NE(orbit_of[0], orbit_of[1]);
  EXPECT_NE(orbit_of[1], orbit_of[2]);
  EXPECT_NE(orbit_of[0], orbit_of[2]);
}

TEST(Graphlets5Test, CycleC5IsVertexTransitive) {
  Graph g = MustGraph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}});
  auto orbits = CountGraphletOrbits5(g);
  ASSERT_TRUE(orbits.ok());
  int the_orbit = -1;
  for (int v = 0; v < 5; ++v) {
    for (int o = 0; o < kNumOrbits5; ++o) {
      if ((*orbits)(v, o) > 0) {
        if (the_orbit == -1) the_orbit = o;
        EXPECT_EQ(o, the_orbit) << "C5 must be a single orbit";
        EXPECT_DOUBLE_EQ((*orbits)(v, o), 1.0);
      }
    }
  }
  ASSERT_NE(the_orbit, -1);
}

TEST(Graphlets5Test, CompleteK5IsVertexTransitiveAndLastOrbit) {
  std::vector<Edge> edges;
  for (int i = 0; i < 5; ++i) {
    for (int j = i + 1; j < 5; ++j) edges.push_back({i, j});
  }
  Graph g = MustGraph(5, edges);
  auto orbits = CountGraphletOrbits5(g);
  ASSERT_TRUE(orbits.ok());
  // K5 is the densest graphlet, hence the highest-numbered orbit.
  for (int v = 0; v < 5; ++v) {
    EXPECT_DOUBLE_EQ((*orbits)(v, kNumOrbits5 - 1), 1.0);
    for (int o = 0; o < kNumOrbits5 - 1; ++o) {
      EXPECT_DOUBLE_EQ((*orbits)(v, o), 0.0);
    }
  }
}

TEST(Graphlets5Test, StarS4CenterAndLeaves) {
  Graph g = MustGraph(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  auto orbits = CountGraphletOrbits5(g);
  ASSERT_TRUE(orbits.ok());
  int center_orbit = -1, leaf_orbit = -1;
  for (int o = 0; o < kNumOrbits5; ++o) {
    if ((*orbits)(0, o) > 0) center_orbit = o;
    if ((*orbits)(1, o) > 0) leaf_orbit = o;
  }
  ASSERT_NE(center_orbit, -1);
  ASSERT_NE(leaf_orbit, -1);
  EXPECT_NE(center_orbit, leaf_orbit);
  for (int leaf = 2; leaf <= 4; ++leaf) {
    EXPECT_DOUBLE_EQ((*orbits)(leaf, leaf_orbit), 1.0);
  }
}

TEST(Graphlets5Test, OrbitsInvariantUnderPermutation) {
  Rng rng(71);
  auto g = ErdosRenyi(25, 0.25, &rng);
  ASSERT_TRUE(g.ok());
  auto orbits = CountGraphletOrbits5(*g);
  ASSERT_TRUE(orbits.ok());
  std::vector<int> perm = RandomPermutation(25, &rng);
  auto pg = g->Permuted(perm);
  ASSERT_TRUE(pg.ok());
  auto porbits = CountGraphletOrbits5(*pg);
  ASSERT_TRUE(porbits.ok());
  for (int v = 0; v < 25; ++v) {
    for (int o = 0; o < kNumOrbits5; ++o) {
      ASSERT_DOUBLE_EQ((*orbits)(v, o), (*porbits)(perm[v], o))
          << "node " << v << " orbit " << o;
    }
  }
}

TEST(Graphlets5Test, TotalTouchesAreFiveTimesSubgraphCount) {
  // Every connected 5-node subgraph contributes exactly 5 orbit touches.
  Rng rng(73);
  auto g = BarabasiAlbert(30, 3, &rng);
  ASSERT_TRUE(g.ok());
  auto orbits = CountGraphletOrbits5(*g);
  ASSERT_TRUE(orbits.ok());
  double total = orbits->Sum();
  EXPECT_DOUBLE_EQ(std::fmod(total, 5.0), 0.0);
  EXPECT_GT(total, 0.0);
}

TEST(Graphlets5Test, Full73ColumnGdv) {
  Rng rng(79);
  auto g = ErdosRenyi(20, 0.3, &rng);
  ASSERT_TRUE(g.ok());
  auto gdv = CountGraphletOrbits73(*g);
  ASSERT_TRUE(gdv.ok());
  EXPECT_EQ(gdv->cols(), 73);
  auto small = CountGraphletOrbits(*g);
  ASSERT_TRUE(small.ok());
  for (int v = 0; v < 20; ++v) {
    for (int o = 0; o < kNumOrbits; ++o) {
      EXPECT_DOUBLE_EQ((*gdv)(v, o), (*small)(v, o));
    }
  }
}

TEST(Graphlets5Test, BudgetEnforced) {
  Rng rng(83);
  auto g = ErdosRenyi(30, 0.4, &rng);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(CountGraphletOrbits5(*g, /*max_subgraphs=*/5).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(GraalFullGdvTest, SignatureStillPerfectOnIdenticalNodes) {
  Rng rng(89);
  auto g = ErdosRenyi(22, 0.25, &rng);
  ASSERT_TRUE(g.ok());
  std::vector<int> perm = RandomPermutation(22, &rng);
  auto pg = g->Permuted(perm);
  ASSERT_TRUE(pg.ok());
  auto sim = GraphletSignatureSimilarity(*g, *pg, 10'000'000,
                                         /*full_gdv=*/true);
  ASSERT_TRUE(sim.ok());
  for (int u = 0; u < 22; ++u) {
    EXPECT_NEAR((*sim)(u, perm[u]), 1.0, 1e-12);
  }
}

TEST(GraalFullGdvTest, OptionProducesValidAlignment) {
  Rng rng(97);
  auto base = PowerlawCluster(50, 3, 0.3, &rng);
  ASSERT_TRUE(base.ok());
  std::vector<int> perm = RandomPermutation(50, &rng);
  auto pg = base->Permuted(perm);
  ASSERT_TRUE(pg.ok());
  GraalOptions opts;
  opts.use_five_node_orbits = true;
  GraalAligner graal(opts);
  auto align = graal.Align(*base, *pg, AssignmentMethod::kJonkerVolgenant);
  ASSERT_TRUE(align.ok());
  int correct = 0;
  for (int u = 0; u < 50; ++u) correct += ((*align)[u] == perm[u]);
  EXPECT_GE(correct, 45);  // Near-perfect on isomorphic graphs.
}

}  // namespace
}  // namespace graphalign
