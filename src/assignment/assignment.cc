#include "assignment/assignment.h"

#include <algorithm>
#include <numeric>

#include "common/failpoint.h"

namespace graphalign {

const char* AssignmentMethodName(AssignmentMethod method) {
  switch (method) {
    case AssignmentMethod::kNearestNeighbor:
      return "NN";
    case AssignmentMethod::kSortGreedy:
      return "SG";
    case AssignmentMethod::kHungarian:
      return "MWM";
    case AssignmentMethod::kJonkerVolgenant:
      return "JV";
  }
  return "unknown";
}

Result<Alignment> NearestNeighborAssign(const DenseMatrix& similarity,
                                        const Deadline& deadline) {
  const int n = similarity.rows();
  const int m = similarity.cols();
  if (n == 0 || m == 0) {
    return Status::InvalidArgument("NearestNeighborAssign: empty matrix");
  }
  GA_RETURN_IF_EXPIRED(deadline, "NearestNeighborAssign");
  Alignment align(n, -1);
  for (int i = 0; i < n; ++i) {
    const double* row = similarity.Row(i);
    int best = 0;
    for (int j = 1; j < m; ++j) {
      if (row[j] > row[best]) best = j;
    }
    align[i] = best;
  }
  return align;
}

Result<Alignment> SortGreedyAssign(const DenseMatrix& similarity,
                                   const Deadline& deadline) {
  const int n = similarity.rows();
  const int m = similarity.cols();
  if (n == 0 || m == 0) {
    return Status::InvalidArgument("SortGreedyAssign: empty matrix");
  }
  GA_RETURN_IF_EXPIRED(deadline, "SortGreedyAssign");
  // Sort flat indices by similarity, descending.
  std::vector<int64_t> order(static_cast<size_t>(n) * m);
  std::iota(order.begin(), order.end(), int64_t{0});
  const double* data = similarity.data();
  std::sort(order.begin(), order.end(),
            [&](int64_t a, int64_t b) { return data[a] > data[b]; });
  Alignment align(n, -1);
  std::vector<bool> col_used(m, false);
  int matched = 0;
  const int target = std::min(n, m);
  for (int64_t idx : order) {
    const int i = static_cast<int>(idx / m);
    const int j = static_cast<int>(idx % m);
    if (align[i] != -1 || col_used[j]) continue;
    align[i] = j;
    col_used[j] = true;
    if (++matched == target) break;
  }
  return align;
}

Result<Alignment> ExtractAlignment(const DenseMatrix& similarity,
                                   AssignmentMethod method,
                                   const Deadline& deadline) {
  GA_FAILPOINT_STATUS(
      "assignment.extract.error",
      Status::Numerical("ExtractAlignment: solver failed on degenerate "
                        "similarity"));
  switch (method) {
    case AssignmentMethod::kNearestNeighbor:
      return NearestNeighborAssign(similarity, deadline);
    case AssignmentMethod::kSortGreedy:
      return SortGreedyAssign(similarity, deadline);
    case AssignmentMethod::kHungarian:
      return HungarianAssign(similarity, deadline);
    case AssignmentMethod::kJonkerVolgenant:
      return JonkerVolgenantAssign(similarity, deadline);
  }
  return Status::InvalidArgument("unknown assignment method");
}

double AlignmentScore(const DenseMatrix& similarity,
                      const Alignment& alignment) {
  double s = 0.0;
  for (int i = 0; i < static_cast<int>(alignment.size()); ++i) {
    if (alignment[i] >= 0) s += similarity(i, alignment[i]);
  }
  return s;
}

}  // namespace graphalign
