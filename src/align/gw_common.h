// Shared Gromov-Wasserstein machinery for GWL and S-GWL (paper §3.6).
//
// The GW discrepancy between relational cost matrices Cs, Ct under the
// squared loss has gradient
//   grad(T) = (Cs.^2) mu 1^T + 1 nu^T (Ct.^2)^T - 2 Cs T Ct^T,
// and is minimized over the transport polytope by proximal-point updates
//   T <- SinkhornProject(T .* exp(-grad/beta), mu, nu)
// (Xie et al. 2020, used by both GWL and S-GWL).
#ifndef GRAPHALIGN_ALIGN_GW_COMMON_H_
#define GRAPHALIGN_ALIGN_GW_COMMON_H_

#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "linalg/csr.h"
#include "linalg/dense.h"

namespace graphalign {

struct GwOptions {
  double beta = 0.1;        // Proximal step / entropic strength.
  int outer_iterations = 30;  // Proximal-point steps.
  int sinkhorn_iterations = 20;
  double tolerance = 1e-6;  // Stop when T stops moving (max-abs).
};

// Proximal-point GW transport between two symmetric cost matrices given as
// CSR (adjacency-based costs). `extra_cost`, if non-null, is added to the
// gradient each step (GWL's Wasserstein embedding term). Returns the n1 x n2
// transport plan.
Result<DenseMatrix> GromovWassersteinTransport(
    const CsrMatrix& cs, const CsrMatrix& ct, const std::vector<double>& mu,
    const std::vector<double>& nu, const GwOptions& options,
    const DenseMatrix* extra_cost = nullptr,
    const DenseMatrix* initial_transport = nullptr,
    const Deadline& deadline = Deadline());

// GW objective value <L(Cs, Ct, T), T> under squared loss (for tests and
// barycenter orientation decisions).
double GromovWassersteinObjective(const CsrMatrix& cs, const CsrMatrix& ct,
                                  const std::vector<double>& mu,
                                  const std::vector<double>& nu,
                                  const DenseMatrix& transport);

// Dense (small) cost matrix to CSR, dropping zeros.
CsrMatrix DenseToCsr(const DenseMatrix& m);

}  // namespace graphalign

#endif  // GRAPHALIGN_ALIGN_GW_COMMON_H_
