// Content-addressed, crash-safe graph repository (DESIGN.md §15).
//
// Layout: one GST1 file per graph at `<dir>/<contenthash>.gst`, where
// <contenthash> is the 16-hex-digit Graph::ContentHash — identical graphs
// dedupe to one file, and a file's name is a commitment to its content that
// fsck can re-verify. Writes go through the atomic temp+fsync+rename
// publish of WriteGstFile, so a crash mid-Put never leaves a visible
// partial entry (at worst an invisible `*.tmp-*` leftover that Gc sweeps).
//
// Quarantine semantics: when Get/Fsck finds an entry whose bytes fail
// verification (typed kCorrupt), the file is renamed aside to
// `<name>.gst.corrupt` — it stops being served immediately, Has() turns
// false, and a later Put of the same graph can re-publish a good copy
// under the original name. Corruption is never retried in a loop and never
// deletes data (the corpse stays for post-mortem until `store gc`).
// Transient failures (kUnavailable mmap/IO trouble) do NOT quarantine:
// destroying a good file because of a flaky syscall would turn a blip into
// data loss.
//
// Opened graphs are cached in-process: the Graph aims straight into the
// read-only mapping (no parse), repeat Gets hand out the same mapping, and
// forked workers inherit and share the physical pages.
#ifndef GRAPHALIGN_STORE_GRAPH_STORE_H_
#define GRAPHALIGN_STORE_GRAPH_STORE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "store/gst.h"

namespace graphalign {

class GraphStore {
 public:
  // Opens (creating if needed) the repository directory. Fails with
  // kUnavailable when the directory cannot be created or listed — callers
  // degrade to their non-store path.
  static Result<std::unique_ptr<GraphStore>> Open(const std::string& dir);

  GraphStore(const GraphStore&) = delete;
  GraphStore& operator=(const GraphStore&) = delete;

  const std::string& dir() const { return dir_; }

  // Publishes `g`, returning its content hash. Deduplicates: if a verified
  // copy is already present, nothing is written and *already_present is set.
  Result<uint64_t> Put(const Graph& g, bool* already_present = nullptr);

  // True when a (non-quarantined) entry exists. Cheap: no verification.
  bool Has(uint64_t hash) const;

  // Maps and fully verifies the entry. kNotFound when absent (including
  // just-quarantined); kCorrupt when verification fails — the file is then
  // quarantined so the next Get is a clean kNotFound; kUnavailable on
  // transient mmap/IO errors (no quarantine).
  Result<Graph> Get(uint64_t hash);

  struct Entry {
    uint64_t hash = 0;
    uint64_t file_bytes = 0;
    bool corrupt = false;  // A quarantined `.gst.corrupt` corpse.
  };
  // Directory listing (entries and corpses), sorted by hash. No
  // verification beyond the filename.
  Result<std::vector<Entry>> List() const;

  struct FsckReport {
    int checked = 0;
    int ok = 0;
    int corrupt = 0;  // Failed verification this pass; now quarantined.
    std::vector<std::string> quarantined;  // Their new `.corrupt` paths.
  };
  // Re-verifies every entry end-to-end: CRCs, CSR structure, and that the
  // recomputed ContentHash matches the filename. Corrupt entries are
  // quarantined. The report is data, not an error: Fsck itself only fails
  // on directory-level IO trouble.
  Result<FsckReport> Fsck();

  struct GcReport {
    int removed = 0;  // tmp leftovers + corpses deleted.
    uint64_t bytes_freed = 0;
  };
  // Sweeps `*.tmp-*` publish leftovers and `*.gst.corrupt` corpses.
  Result<GcReport> Gc();

  // Counters for daemon introspection (monotonic over this process).
  struct Counters {
    uint64_t puts = 0;
    uint64_t gets = 0;
    uint64_t corrupt = 0;  // Entries quarantined by Get/Fsck.
    uint64_t missing = 0;  // Gets that found no entry.
  };
  Counters counters() const;

  static std::string HashName(uint64_t hash);  // 16 lowercase hex digits.
  static Result<uint64_t> ParseHashName(const std::string& name);

 private:
  explicit GraphStore(std::string dir) : dir_(std::move(dir)) {}

  std::string PathFor(uint64_t hash) const;
  // Renames `path` aside to `path + ".corrupt"` and drops any cached
  // mapping. Best-effort: a failed rename still stops the entry being
  // served this call.
  void Quarantine(uint64_t hash, const std::string& path);

  const std::string dir_;
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, Graph> mapped_;  // Open read-only mappings.
  Counters counters_;
};

}  // namespace graphalign

#endif  // GRAPHALIGN_STORE_GRAPH_STORE_H_
