// LSH candidate generation: the front half of the sparse similarity pipeline
// (DESIGN.md §13).
//
// Every dense aligner materializes an n1 x n2 similarity matrix, which caps
// alignment at ~10^4 nodes. This module finds *likely* node pairs without
// comparing all pairs: each node is summarized as a set of structural tokens
// (degree buckets, neighborhood degree histogram, optional graphlet orbits),
// MinHash compresses the token set into a signature, and banded LSH (the
// shasta LowHash/OverlapFinder idiom) emits a candidate pair whenever two
// nodes from opposite graphs share a bucket in at least one band. Candidates
// are then scored by the aligner (Aligner::ComputeSparseSimilarity) and
// matched by the sparse-candidate LAP (assignment/sparse_lap.h).
//
// Generation is deterministic: signatures are pure functions of the graph
// and the seed, parallel loops write disjoint rows, and the emitted
// candidate list is canonically sorted — byte-identical output at any
// GRAPHALIGN_THREADS.
#ifndef GRAPHALIGN_ALIGN_SPARSE_CANDIDATES_H_
#define GRAPHALIGN_ALIGN_SPARSE_CANDIDATES_H_

#include <cstdint>
#include <vector>

#include "assignment/sparse_lap.h"
#include "common/deadline.h"
#include "common/status.h"
#include "graph/graph.h"

namespace graphalign {

struct LshOptions {
  // Banded MinHash shape: bands * rows_per_band hash functions. Two nodes
  // collide when all `rows_per_band` minima agree in at least one band, so
  // more rows = stricter buckets, more bands = more chances to collide
  // (P[candidate] = 1 - (1 - s^rows)^bands at token-Jaccard s).
  int bands = 16;
  int rows_per_band = 4;
  // Buckets with more than this many nodes on either side are skipped: they
  // carry no signal (indistinguishable signatures) and would blow the
  // candidate set up quadratically — shasta's too-popular-bucket rule.
  int max_bucket = 128;
  // Add 4-node graphlet orbit tokens (src/graph/graphlets) to the node
  // signatures. Sharper on structure-rich graphs, but costs an ESU
  // enumeration per graph.
  bool use_graphlets = false;
  uint64_t seed = 0x5EEDBA5EULL;
};

struct LshStats {
  int64_t candidates = 0;        // Deduplicated pairs emitted.
  int64_t skipped_buckets = 0;   // Buckets over max_bucket on either side.
  int rows_without_candidates = 0;  // g1 nodes no band paired with anyone.
};

// The structural token set of node `u` (sorted, deduplicated). Exposed for
// determinism tests; orbit_row is the node's graphlet-orbit row when
// use_graphlets is on (nullptr otherwise).
std::vector<uint64_t> NodeTokens(const Graph& g, int u,
                                 const double* orbit_row);

// Emits candidate pairs (row in g1, col in g2, similarity = 0) sorted by
// (row, col). Options are validated (positive shape, bands * rows <= 4096).
// The deadline is polled between per-node signature blocks and per-band
// bucket joins; on expiry returns kDeadlineExceeded.
Result<std::vector<SparseCandidate>> GenerateLshCandidates(
    const Graph& g1, const Graph& g2, const LshOptions& options = {},
    const Deadline& deadline = Deadline(), LshStats* stats = nullptr);

}  // namespace graphalign

#endif  // GRAPHALIGN_ALIGN_SPARSE_CANDIDATES_H_
