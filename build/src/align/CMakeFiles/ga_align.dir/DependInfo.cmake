
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/align/aligner.cc" "src/align/CMakeFiles/ga_align.dir/aligner.cc.o" "gcc" "src/align/CMakeFiles/ga_align.dir/aligner.cc.o.d"
  "/root/repo/src/align/cone.cc" "src/align/CMakeFiles/ga_align.dir/cone.cc.o" "gcc" "src/align/CMakeFiles/ga_align.dir/cone.cc.o.d"
  "/root/repo/src/align/graal.cc" "src/align/CMakeFiles/ga_align.dir/graal.cc.o" "gcc" "src/align/CMakeFiles/ga_align.dir/graal.cc.o.d"
  "/root/repo/src/align/grasp.cc" "src/align/CMakeFiles/ga_align.dir/grasp.cc.o" "gcc" "src/align/CMakeFiles/ga_align.dir/grasp.cc.o.d"
  "/root/repo/src/align/gw_common.cc" "src/align/CMakeFiles/ga_align.dir/gw_common.cc.o" "gcc" "src/align/CMakeFiles/ga_align.dir/gw_common.cc.o.d"
  "/root/repo/src/align/gwl.cc" "src/align/CMakeFiles/ga_align.dir/gwl.cc.o" "gcc" "src/align/CMakeFiles/ga_align.dir/gwl.cc.o.d"
  "/root/repo/src/align/isorank.cc" "src/align/CMakeFiles/ga_align.dir/isorank.cc.o" "gcc" "src/align/CMakeFiles/ga_align.dir/isorank.cc.o.d"
  "/root/repo/src/align/lrea.cc" "src/align/CMakeFiles/ga_align.dir/lrea.cc.o" "gcc" "src/align/CMakeFiles/ga_align.dir/lrea.cc.o.d"
  "/root/repo/src/align/multi.cc" "src/align/CMakeFiles/ga_align.dir/multi.cc.o" "gcc" "src/align/CMakeFiles/ga_align.dir/multi.cc.o.d"
  "/root/repo/src/align/netalign.cc" "src/align/CMakeFiles/ga_align.dir/netalign.cc.o" "gcc" "src/align/CMakeFiles/ga_align.dir/netalign.cc.o.d"
  "/root/repo/src/align/nsd.cc" "src/align/CMakeFiles/ga_align.dir/nsd.cc.o" "gcc" "src/align/CMakeFiles/ga_align.dir/nsd.cc.o.d"
  "/root/repo/src/align/regal.cc" "src/align/CMakeFiles/ga_align.dir/regal.cc.o" "gcc" "src/align/CMakeFiles/ga_align.dir/regal.cc.o.d"
  "/root/repo/src/align/sgwl.cc" "src/align/CMakeFiles/ga_align.dir/sgwl.cc.o" "gcc" "src/align/CMakeFiles/ga_align.dir/sgwl.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ga_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/ga_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ga_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/assignment/CMakeFiles/ga_assignment.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
