#include "assignment/sparse_lap.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <utility>

#include "common/failpoint.h"

namespace graphalign {

Result<Alignment> SparseLapAssign(
    int num_rows, int num_cols,
    const std::vector<SparseCandidate>& candidates,
    const Deadline& deadline) {
  if (num_rows < 0 || num_cols < 0) {
    return Status::InvalidArgument("SparseLapAssign: negative dimensions");
  }
  // Pops dominate the runtime, so the deadline is polled per pop with a wide
  // stride rather than per row: a single pathological augmentation can touch
  // the whole graph, and polling only between rows would let it overrun the
  // budget unboundedly.
  DeadlineChecker checker(deadline, /*stride=*/4096);
  double max_sim = 0.0;
  for (const SparseCandidate& c : candidates) {
    if (c.row < 0 || c.row >= num_rows || c.col < 0 || c.col >= num_cols) {
      return Status::OutOfRange("SparseLapAssign: candidate out of range");
    }
    if (!std::isfinite(c.similarity)) {
      return Status::InvalidArgument("SparseLapAssign: non-finite similarity");
    }
    max_sim = std::max(max_sim, c.similarity);
  }
  // Non-negative costs for Dijkstra: cost = max_sim - sim. Every row also
  // gets a private "skip" column (index num_cols + row) with a cost larger
  // than any real augmenting path, so each row-wise augmentation succeeds
  // and the final matching maximizes cardinality first, total similarity
  // second — globally, not just per processing order.
  struct Arc {
    int col;
    double cost;
  };
  const double kSkipCost =
      (max_sim + 1.0) * (static_cast<double>(num_rows) + num_cols + 1.0);
  const int total_cols = num_cols + num_rows;
  std::vector<std::vector<Arc>> arcs(num_rows);
  for (const SparseCandidate& c : candidates) {
    arcs[c.row].push_back({c.col, max_sim - c.similarity});
  }
  // Duplicate (row, col) candidates would become parallel arcs; keep only
  // the cheapest (highest-similarity) one per column.
  for (int r = 0; r < num_rows; ++r) {
    std::vector<Arc>& row = arcs[r];
    std::sort(row.begin(), row.end(), [](const Arc& a, const Arc& b) {
      return a.col != b.col ? a.col < b.col : a.cost < b.cost;
    });
    row.erase(std::unique(row.begin(), row.end(),
                          [](const Arc& a, const Arc& b) {
                            return a.col == b.col;
                          }),
              row.end());
    row.push_back({num_cols + r, kSkipCost});
  }

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<int> row_match(num_rows, -1);
  std::vector<int> col_match(total_cols, -1);
  std::vector<double> u(num_rows, 0.0), v(total_cols, 0.0);
  std::vector<double> dist(total_cols, kInf);
  std::vector<int> pred_row(total_cols, -1);
  std::vector<bool> done(total_cols, false);
  // Columns whose dist/pred/done were written this augmentation; resetting
  // just these (instead of std::fill over total_cols per row) keeps each
  // augmentation proportional to the region it explored, which is what makes
  // 10^5-node candidate sets feasible.
  std::vector<int> touched;
  touched.reserve(256);

  using QItem = std::pair<double, int>;  // (distance, column)
  for (int s = 0; s < num_rows; ++s) {
    std::priority_queue<QItem, std::vector<QItem>, std::greater<>> pq;
    for (const Arc& a : arcs[s]) {
      const double rc = a.cost - u[s] - v[a.col];
      if (rc < dist[a.col]) {
        if (dist[a.col] == kInf) touched.push_back(a.col);
        dist[a.col] = rc;
        pred_row[a.col] = s;
        pq.push({rc, a.col});
      }
    }
    int found = -1;
    double total = 0.0;
    while (!pq.empty()) {
      GA_FAILPOINT_STATUS(
          "assignment.sparse_lap.pop",
          Status::Unavailable("SparseLapAssign: injected solver fault"));
      if (checker.Expired()) {
        return Status::DeadlineExceeded("SparseLapAssign: deadline exceeded");
      }
      auto [d, j] = pq.top();
      pq.pop();
      if (done[j] || d > dist[j]) continue;
      done[j] = true;
      if (col_match[j] < 0) {
        found = j;
        total = d;
        break;
      }
      const int i = col_match[j];
      for (const Arc& a : arcs[i]) {
        if (done[a.col]) continue;
        const double nd = d + a.cost - u[i] - v[a.col];
        if (nd < dist[a.col]) {
          if (dist[a.col] == kInf) touched.push_back(a.col);
          dist[a.col] = nd;
          pred_row[a.col] = i;
          pq.push({nd, a.col});
        }
      }
    }
    // The skip column guarantees an augmenting path always exists.
    GA_CHECK(found >= 0);

    // Dual update keeps reduced costs non-negative and matched edges tight.
    // Only touched columns can be `done`, so the scan stays local too.
    u[s] += total;
    for (const int j : touched) {
      if (!done[j] || j == found) continue;
      const double delta = total - dist[j];
      v[j] -= delta;
      if (col_match[j] >= 0) u[col_match[j]] += delta;
    }

    // Augment along the predecessor chain.
    int j = found;
    for (;;) {
      const int i = pred_row[j];
      col_match[j] = i;
      const int prev_j = row_match[i];
      row_match[i] = j;
      if (i == s) break;
      j = prev_j;
    }

    for (const int t : touched) {
      dist[t] = kInf;
      pred_row[t] = -1;
      done[t] = false;
    }
    touched.clear();
  }
  // Rows matched to their skip column are reported unmatched.
  for (int r = 0; r < num_rows; ++r) {
    if (row_match[r] >= num_cols) row_match[r] = -1;
  }
  return row_match;
}

}  // namespace graphalign
