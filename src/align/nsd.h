// Network Similarity Decomposition (Kollias, Mohammadi & Grama 2011),
// paper §3.3: approximates the IsoRank fixed point by decomposing the
// Kronecker power series into per-component outer products
//     X^(n) = sum_i [ (1-a) sum_k a^k z_i^(k) (w_i^(k))^T + a^n z_i^(n) (w_i^(n))^T ]
// with z_i^(k) = (A~^T)^k z_i and w_i^(k) = (B~^T)^k w_i, where A~ = D^-1 A.
// In the unrestricted setting the components are the uniform and the
// degree vector (no Blast prior).
#ifndef GRAPHALIGN_ALIGN_NSD_H_
#define GRAPHALIGN_ALIGN_NSD_H_

#include <string>
#include <vector>

#include "align/aligner.h"

namespace graphalign {

struct NsdOptions {
  double alpha = 0.8;  // Decay (Table 1).
  int iterations = 15;  // Depth of the power series.
};

class NsdAligner : public Aligner {
 public:
  explicit NsdAligner(const NsdOptions& options = {}) : options_(options) {}

  std::string name() const override { return "NSD"; }
  AssignmentMethod default_assignment() const override {
    return AssignmentMethod::kSortGreedy;  // As proposed (Table 1).
  }

  // X is a sum of coeff * z w^T terms by construction, so a candidate (i, j)
  // scores as sum_t coeff_t z_t[i] w_t[j] without ever forming X:
  // O(candidates * terms) time, O((n1 + n2) * terms) memory.
  SparseSimilarityMode sparse_similarity_mode() const override {
    return SparseSimilarityMode::kNative;
  }

 protected:
  Result<DenseMatrix> ComputeSimilarityImpl(const Graph& g1, const Graph& g2,
                                            const Deadline& deadline) override;

  Status ScoreSparseCandidatesImpl(
      const Graph& g1, const Graph& g2, const Deadline& deadline,
      std::vector<SparseCandidate>* candidates) override;

 private:
  // One rank-1 term of the decomposition: coeff * z w^T.
  struct Term {
    double coeff;
    std::vector<double> z;  // length n1
    std::vector<double> w;  // length n2
  };
  // All terms of the series — 2 components x (iterations + 1 tail) — shared
  // by the dense and sparse paths.
  Result<std::vector<Term>> ComputeTerms(const Graph& g1, const Graph& g2,
                                         const Deadline& deadline) const;

  NsdOptions options_;
};

}  // namespace graphalign

#endif  // GRAPHALIGN_ALIGN_NSD_H_
