#include "common/parse.h"

#include <cctype>
#include <cerrno>
#include <climits>
#include <cmath>
#include <cstdlib>

namespace graphalign {
namespace {

// strtol/strtod skip leading whitespace; strict parsing must not.
bool HasLeadingSpace(const std::string& text) {
  return !text.empty() && std::isspace(static_cast<unsigned char>(text[0]));
}

}  // namespace

Result<int> ParseStrictPositiveInt(const std::string& text) {
  if (HasLeadingSpace(text)) {
    return Status::InvalidArgument("'" + text +
                                   "' is not a positive integer");
  }
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE || v <= 0 ||
      v > INT_MAX) {
    return Status::InvalidArgument("'" + text +
                                   "' is not a positive integer");
  }
  return static_cast<int>(v);
}

Result<double> ParseStrictPositiveDouble(const std::string& text) {
  if (HasLeadingSpace(text)) {
    return Status::InvalidArgument("'" + text +
                                   "' is not a positive number");
  }
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE ||
      !std::isfinite(v) || v <= 0.0) {
    return Status::InvalidArgument("'" + text +
                                   "' is not a positive number");
  }
  return v;
}

Result<uint64_t> ParseStrictUint64(const std::string& text) {
  // strtoull silently accepts "-1" (wrapping it); reject any '-' up front.
  if (HasLeadingSpace(text) || text.find('-') != std::string::npos) {
    return Status::InvalidArgument("'" + text +
                                   "' is not an unsigned integer");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE) {
    return Status::InvalidArgument("'" + text +
                                   "' is not an unsigned integer");
  }
  return static_cast<uint64_t>(v);
}

}  // namespace graphalign
