# Empty dependencies file for ga_align.
# This may be replaced when dependencies are built.
