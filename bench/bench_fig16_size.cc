// Figure 16: accuracy under 1% one-way noise on Newman-Watts graphs of
// increasing size (§6.7): (a) constant average degree k = 10 (density
// decreases with n — quality drops for everyone except IsoRank), and
// (b) constant density 10% (k = n/10 — GWL/S-GWL fail at extreme degrees,
// GRASP/CONE cope).
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "graph/generators.h"

namespace graphalign {
namespace {

int Main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  bench::Banner("Figure 16",
                "accuracy vs size, Newman-Watts, 1% one-way noise", args);
  const int reps = args.repetitions > 0 ? args.repetitions : (args.full ? 5 : 1);

  Journal journal = bench::MustOpenJournal(args);
  Table t({"sweep", "n", "k", "algorithm", "accuracy"});
  auto run_point = [&](const std::string& sweep, int n, int k) {
    Rng rng(args.seed);
    auto base = NewmanWatts(n, k, 0.5, &rng);
    GA_CHECK(base.ok());
    const bool sparse = base->AverageDegree() < 20.0;
    for (const std::string& name : SelectedAlgorithms(args)) {
      auto aligner = bench::MakeBenchAligner(name, sparse);
      NoiseOptions noise;
      noise.level = 0.01;
      bench::JournaledRow(
          &t, &journal,
          bench::CellKey(
              {sweep, std::to_string(n), std::to_string(k), name}),
          [&] {
            RunOutcome out = RunAveraged(
                aligner.get(), *base, noise,
                AssignmentMethod::kJonkerVolgenant, reps, args.seed + n, args);
            return std::vector<std::string>{sweep, std::to_string(n),
                                            std::to_string(k), name,
                                            FormatAccuracy(out)};
          });
    }
  };

  // (a) Constant degree, growing size (decreasing density).
  const std::vector<int> sizes = args.full
                                     ? std::vector<int>{500, 1000, 2000, 4000}
                                     : std::vector<int>{150, 300, 500};
  for (int n : sizes) run_point("const-degree", n, args.full ? 10 : 6);

  // (b) Constant density 10%: k = n/10 (even).
  for (int n : sizes) {
    int k = std::max(2, n / 10);
    if (k % 2 != 0) ++k;
    run_point("const-density", n, k);
  }

  bench::Emit(t, args);
  return 0;
}

}  // namespace
}  // namespace graphalign

int main(int argc, char** argv) { return graphalign::Main(argc, argv); }
