file(REMOVE_RECURSE
  "CMakeFiles/ga_graph.dir/generators.cc.o"
  "CMakeFiles/ga_graph.dir/generators.cc.o.d"
  "CMakeFiles/ga_graph.dir/graph.cc.o"
  "CMakeFiles/ga_graph.dir/graph.cc.o.d"
  "CMakeFiles/ga_graph.dir/graphlets.cc.o"
  "CMakeFiles/ga_graph.dir/graphlets.cc.o.d"
  "CMakeFiles/ga_graph.dir/io.cc.o"
  "CMakeFiles/ga_graph.dir/io.cc.o.d"
  "libga_graph.a"
  "libga_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ga_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
