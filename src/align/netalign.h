// NetAlign (Bayati, Gleich, Saberi & Wang, TKDD 2013) — sparse network
// alignment by overlap maximization over a candidate-pair set.
//
// The paper EXCLUDED NetAlign from the main study after observing inadequate
// quality even with the same enhancements granted to the other methods
// (the IsoRank degree-similarity notion and JV assignment, §4). This module
// exists to reproduce that exclusion decision: bench_excluded_netalign runs
// it head-to-head against the included nine.
//
// Implementation: the matching-relaxation flavor. A sparse candidate set L
// is seeded with the top-c degree-prior matches per node; iterative
// neighborhood reinforcement propagates (normalized) scores across "squares"
// (candidate pairs whose endpoints are adjacent in both graphs), mirroring
// the overlap term of NetAlign's objective
//     max alpha * sum w_ij x_ij + beta/2 * (# preserved edges);
// the final one-to-one matching is extracted with the optimal sparse LAP.
// The exact max-product belief propagation of the original is simplified to
// this damped score iteration (see DESIGN.md §4).
#ifndef GRAPHALIGN_ALIGN_NETALIGN_H_
#define GRAPHALIGN_ALIGN_NETALIGN_H_

#include <string>

#include "align/aligner.h"

namespace graphalign {

struct NetAlignOptions {
  int candidates_per_node = 10;  // |L| / n: degree-prior top-c seeding.
  double alpha = 1.0;            // Weight of the prior similarity term.
  double beta = 2.0;             // Weight of the overlap (squares) term.
  int iterations = 20;           // Reinforcement iterations.
  double damping = 0.5;          // Score damping, as in loopy BP practice.
};

class NetAlignAligner : public Aligner {
 public:
  explicit NetAlignAligner(const NetAlignOptions& options = {})
      : options_(options) {}

  std::string name() const override { return "NetAlign"; }
  AssignmentMethod default_assignment() const override {
    return AssignmentMethod::kJonkerVolgenant;  // The §4 enhancement.
  }
 protected:
  // Densified from the sparse candidate scores (zero off-candidate).
  Result<DenseMatrix> ComputeSimilarityImpl(const Graph& g1, const Graph& g2,
                                            const Deadline& deadline) override;

  // Native extraction: optimal sparse LAP over the candidate set.
  Result<Alignment> AlignNativeImpl(const Graph& g1, const Graph& g2,
                                    const Deadline& deadline) override;

 private:
  NetAlignOptions options_;
};

}  // namespace graphalign

#endif  // GRAPHALIGN_ALIGN_NETALIGN_H_
