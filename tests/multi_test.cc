#include <numeric>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "align/cone.h"
#include "align/multi.h"
#include "common/random.h"
#include "graph/generators.h"
#include "metrics/metrics.h"
#include "noise/noise.h"

namespace graphalign {
namespace {

// Three graphs: a base and two permuted light-noise copies with known
// correspondences.
struct MultiFixture {
  std::vector<Graph> graphs;
  // truth[g][u] = base node corresponding to node u of graph g.
  std::vector<std::vector<int>> to_base;
};

MultiFixture MakeFixture(double noise_level) {
  MultiFixture fx;
  Rng rng(33);
  auto base = PowerlawCluster(70, 3, 0.4, &rng);
  GA_CHECK(base.ok());
  fx.graphs.push_back(*base);
  std::vector<int> identity(base->num_nodes());
  std::iota(identity.begin(), identity.end(), 0);
  fx.to_base.push_back(identity);
  for (int copy = 0; copy < 2; ++copy) {
    NoiseOptions noise;
    noise.level = noise_level;
    auto prob = MakeAlignmentProblem(*base, noise, &rng);
    GA_CHECK(prob.ok());
    fx.graphs.push_back(prob->g2);
    // prob->ground_truth maps base -> copy; invert it to copy -> base.
    std::vector<int> inverse(base->num_nodes(), -1);
    for (int u = 0; u < base->num_nodes(); ++u) {
      inverse[prob->ground_truth[u]] = u;
    }
    fx.to_base.push_back(std::move(inverse));
  }
  return fx;
}

TEST(MultiAlignTest, RequiresTwoGraphsAndValidReference) {
  ConeAligner cone;
  std::vector<Graph> one;
  Rng rng(1);
  auto g = ErdosRenyi(10, 0.3, &rng);
  one.push_back(*g);
  EXPECT_FALSE(AlignMultiple(one, &cone,
                             AssignmentMethod::kJonkerVolgenant)
                   .ok());
  one.push_back(*g);
  EXPECT_FALSE(AlignMultiple(one, &cone, AssignmentMethod::kJonkerVolgenant,
                             /*reference=*/5)
                   .ok());
}

TEST(MultiAlignTest, StarAlignmentRecoversAllPairwiseCorrespondences) {
  MultiFixture fx = MakeFixture(/*noise_level=*/0.01);
  ConeAligner cone;
  auto result = AlignMultiple(fx.graphs, &cone,
                              AssignmentMethod::kJonkerVolgenant,
                              /*reference=*/0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->reference, 0);
  ASSERT_EQ(result->to_reference.size(), 3u);
  // Reference maps to itself by identity.
  for (int u = 0; u < fx.graphs[0].num_nodes(); ++u) {
    EXPECT_EQ(result->to_reference[0][u], u);
  }
  // Each copy's map to the reference matches the hidden truth closely.
  for (int g = 1; g <= 2; ++g) {
    int correct = 0;
    for (size_t u = 0; u < result->to_reference[g].size(); ++u) {
      correct += (result->to_reference[g][u] == fx.to_base[g][u]);
    }
    EXPECT_GE(static_cast<double>(correct) / fx.graphs[g].num_nodes(), 0.6)
        << "graph " << g;
  }
}

TEST(MultiAlignTest, ComposedCrossAlignmentIsConsistent) {
  MultiFixture fx = MakeFixture(0.01);
  ConeAligner cone;
  auto result = AlignMultiple(fx.graphs, &cone,
                              AssignmentMethod::kJonkerVolgenant, 0);
  ASSERT_TRUE(result.ok());
  auto map12 = ComposeAlignment(*result, fx.graphs, 1, 2);
  ASSERT_TRUE(map12.ok());
  // Truth for 1 -> 2: node u of graph1 -> base node -> node of graph2.
  std::vector<int> base_to_2(fx.graphs[0].num_nodes(), -1);
  for (size_t v = 0; v < fx.to_base[2].size(); ++v) {
    base_to_2[fx.to_base[2][v]] = static_cast<int>(v);
  }
  int correct = 0;
  for (size_t u = 0; u < map12->size(); ++u) {
    const int truth = base_to_2[fx.to_base[1][u]];
    correct += ((*map12)[u] == truth);
  }
  EXPECT_GE(static_cast<double>(correct) / map12->size(), 0.45);
  // Composition with itself is the identity where defined.
  auto map11 = ComposeAlignment(*result, fx.graphs, 1, 1);
  ASSERT_TRUE(map11.ok());
  for (size_t u = 0; u < map11->size(); ++u) {
    if ((*map11)[u] >= 0) EXPECT_EQ((*map11)[u], static_cast<int>(u));
  }
}

TEST(MultiAlignTest, ComposeValidatesIndices) {
  MultiFixture fx = MakeFixture(0.0);
  ConeAligner cone;
  auto result = AlignMultiple(fx.graphs, &cone,
                              AssignmentMethod::kJonkerVolgenant, 0);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(ComposeAlignment(*result, fx.graphs, -1, 0).ok());
  EXPECT_FALSE(ComposeAlignment(*result, fx.graphs, 0, 9).ok());
}

TEST(MultiAlignTest, ClustersGroupCorrespondingNodes) {
  MultiFixture fx = MakeFixture(0.0);
  ConeAligner cone;
  auto result = AlignMultiple(fx.graphs, &cone,
                              AssignmentMethod::kJonkerVolgenant, 0);
  ASSERT_TRUE(result.ok());
  auto clusters = AlignmentClusters(*result, fx.graphs);
  ASSERT_EQ(clusters.size(), static_cast<size_t>(fx.graphs[0].num_nodes()));
  // With one-to-one pairwise maps, every cluster holds one node per graph.
  size_t full_clusters = 0;
  for (const auto& cluster : clusters) {
    std::set<int> graphs_seen;
    for (const auto& [g, u] : cluster) graphs_seen.insert(g);
    if (graphs_seen.size() == fx.graphs.size()) ++full_clusters;
  }
  EXPECT_GE(full_clusters, clusters.size() * 9 / 10);
}

TEST(MultiAlignTest, DefaultReferenceIsLargestGraph) {
  Rng rng(3);
  std::vector<Graph> graphs;
  auto small = ErdosRenyi(20, 0.3, &rng);
  auto big = ErdosRenyi(40, 0.2, &rng);
  graphs.push_back(*small);
  graphs.push_back(*big);
  ConeAligner cone;
  auto result =
      AlignMultiple(graphs, &cone, AssignmentMethod::kSortGreedy);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->reference, 1);
}

}  // namespace
}  // namespace graphalign
