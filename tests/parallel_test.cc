#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/random.h"
#include "linalg/csr.h"
#include "linalg/dense.h"

namespace graphalign {
namespace {

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  const int64_t n = 100000;
  std::vector<std::atomic<int>> hits(n);
  ParallelFor(n, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  }, /*min_work=*/1);
  for (int64_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, BlocksAreContiguousAndOrderedWithinCall) {
  // Each invocation receives a [lo, hi) range; ranges must not overlap.
  const int64_t n = 5000;
  std::vector<int> owner(n, -1);
  std::atomic<int> next_id{0};
  ParallelFor(n, [&](int64_t lo, int64_t hi) {
    const int id = next_id.fetch_add(1);
    for (int64_t i = lo; i < hi; ++i) {
      ASSERT_EQ(owner[i], -1);
      owner[i] = id;
    }
  }, 1);
  for (int64_t i = 0; i < n; ++i) ASSERT_NE(owner[i], -1);
}

TEST(ParallelForTest, SmallWorkRunsInline) {
  // With n below min_work there is exactly one invocation covering all.
  int calls = 0;
  ParallelFor(10, [&](int64_t lo, int64_t hi) {
    ++calls;
    EXPECT_EQ(lo, 0);
    EXPECT_EQ(hi, 10);
  }, /*min_work=*/100);
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForTest, ZeroAndNegativeSizesAreNoOps) {
  int calls = 0;
  ParallelFor(0, [&](int64_t, int64_t) { ++calls; });
  ParallelFor(-5, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelForTest, ThreadCountIsPositive) {
  EXPECT_GE(ParallelThreadCount(), 1);
}

TEST(ParallelForTest, RepeatedCallsAreStable) {
  // Stress the pool handshake: many back-to-back parallel regions.
  for (int round = 0; round < 200; ++round) {
    std::atomic<int64_t> sum{0};
    ParallelFor(1000, [&](int64_t lo, int64_t hi) {
      int64_t local = 0;
      for (int64_t i = lo; i < hi; ++i) local += i;
      sum.fetch_add(local);
    }, 1);
    ASSERT_EQ(sum.load(), 999LL * 1000 / 2);
  }
}

TEST(ParallelForTest, NestedCallsRunInlineInsteadOfDeadlocking) {
  // A ParallelFor issued from inside a pool job must not touch the pool's
  // single job slot; it runs inline on the calling worker. Regression test
  // for reentrancy: before the thread_local in-pool guard this corrupted
  // the job state or deadlocked.
  const int64_t outer_n = 64;
  std::vector<std::atomic<int64_t>> sums(outer_n);
  ParallelFor(outer_n, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      // Nested region: min_work=1 so it would try to go parallel.
      ParallelFor(100, [&, i](int64_t nlo, int64_t nhi) {
        int64_t local = 0;
        for (int64_t k = nlo; k < nhi; ++k) local += k;
        sums[i].fetch_add(local);
      }, /*min_work=*/1);
    }
  }, /*min_work=*/1);
  for (int64_t i = 0; i < outer_n; ++i) {
    ASSERT_EQ(sums[i].load(), 99LL * 100 / 2) << "outer index " << i;
  }
}

TEST(ParallelForTest, DeeplyNestedCallsStillCoverEverything) {
  std::atomic<int64_t> count{0};
  ParallelFor(8, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      ParallelFor(8, [&](int64_t nlo, int64_t nhi) {
        for (int64_t j = nlo; j < nhi; ++j) {
          ParallelFor(8, [&](int64_t dlo, int64_t dhi) {
            count.fetch_add(dhi - dlo);
          }, 1);
        }
      }, 1);
    }
  }, 1);
  EXPECT_EQ(count.load(), 8 * 8 * 8);
}

TEST(ParallelKernelsTest, GemmMatchesSequentialReference) {
  Rng rng(5);
  const int n = 257;  // Odd size to exercise uneven partitioning.
  DenseMatrix a(n, n), b(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      a(i, j) = rng.Normal();
      b(i, j) = rng.Normal();
    }
  }
  DenseMatrix c = Multiply(a, b);  // Possibly parallel.
  // Sequential reference for a few sampled entries.
  for (int trial = 0; trial < 50; ++trial) {
    const int i = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(n)));
    const int j = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(n)));
    double s = 0.0;
    for (int k = 0; k < n; ++k) s += a(i, k) * b(k, j);
    ASSERT_NEAR(c(i, j), s, 1e-9);
  }
}

TEST(ParallelKernelsTest, SpmmDeterministicAcrossRuns) {
  Rng rng(6);
  std::vector<Triplet> trip;
  const int n = 400;
  for (int k = 0; k < 4000; ++k) {
    trip.push_back({static_cast<int>(rng.UniformInt(static_cast<uint64_t>(n))),
                    static_cast<int>(rng.UniformInt(static_cast<uint64_t>(n))),
                    rng.Normal()});
  }
  CsrMatrix s = CsrMatrix::FromTriplets(n, n, trip);
  DenseMatrix x(n, 80);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < 80; ++j) x(i, j) = rng.Normal();
  }
  DenseMatrix y1 = s.Multiply(x);
  DenseMatrix y2 = s.Multiply(x);
  // Byte-identical: the row partition fixes the floating-point order.
  EXPECT_TRUE(y1 == y2);
  DenseMatrix xt = x.Transposed();  // 80 x n, conformable for x * S.
  DenseMatrix z1 = s.RightMultiplied(xt);
  DenseMatrix z2 = s.RightMultiplied(xt);
  EXPECT_TRUE(z1 == z2);
}

TEST(ParallelKernelsTest, MultiplyAtBMatchesSequentialReference) {
  Rng rng(7);
  const int n = 301, k = 37, m = 53;  // a: n x k, b: n x m.
  DenseMatrix a(n, k), b(n, m);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < k; ++j) a(i, j) = rng.Normal();
    for (int j = 0; j < m; ++j) b(i, j) = rng.Normal();
  }
  DenseMatrix c = MultiplyAtB(a, b);  // Parallel over a's columns.
  ASSERT_EQ(c.rows(), k);
  ASSERT_EQ(c.cols(), m);
  // Sequential reference accumulates over rows in ascending order — the
  // parallel kernel must match bitwise (block-column ownership keeps the
  // per-entry FP accumulation order identical).
  DenseMatrix ref(k, m);
  for (int r = 0; r < n; ++r) {
    for (int i = 0; i < k; ++i) {
      const double av = a(r, i);
      for (int j = 0; j < m; ++j) ref(i, j) += av * b(r, j);
    }
  }
  EXPECT_TRUE(c == ref);
  EXPECT_TRUE(MultiplyAtB(a, b) == c);  // Deterministic across runs.
}

TEST(ParallelKernelsTest, MultiplyVecMatchesSequentialReference) {
  Rng rng(8);
  const int n = 423, m = 77;
  DenseMatrix a(n, m);
  std::vector<double> x(m);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < m; ++j) a(i, j) = rng.Normal();
  }
  for (int j = 0; j < m; ++j) x[j] = rng.Normal();
  const std::vector<double> y = MultiplyVec(a, x);
  ASSERT_EQ(y.size(), static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    double s = 0.0;
    for (int j = 0; j < m; ++j) s += a(i, j) * x[j];
    ASSERT_EQ(y[i], s) << "row " << i;  // Bitwise: same per-row order.
  }
}

TEST(ParallelKernelsTest, CsrMultiplyTransposedMatchesSequentialReference) {
  Rng rng(9);
  const int rows = 350, cols = 290, dense_cols = 40;
  std::vector<Triplet> trip;
  for (int k = 0; k < 6000; ++k) {
    trip.push_back(
        {static_cast<int>(rng.UniformInt(static_cast<uint64_t>(rows))),
         static_cast<int>(rng.UniformInt(static_cast<uint64_t>(cols))),
         rng.Normal()});
  }
  CsrMatrix s = CsrMatrix::FromTriplets(rows, cols, trip);
  DenseMatrix b(rows, dense_cols);
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < dense_cols; ++j) b(i, j) = rng.Normal();
  }
  DenseMatrix y1 = s.MultiplyTransposed(b);  // cols x dense_cols
  DenseMatrix y2 = s.MultiplyTransposed(b);
  EXPECT_TRUE(y1 == y2);  // Deterministic across runs.
  // Reference via the serial scatter order: for each output row j, entries
  // accumulate in ascending source-row order — matching the CSC fill.
  DenseMatrix ref(cols, dense_cols);
  for (int r = 0; r < rows; ++r) {
    for (int64_t idx = s.row_ptr()[r]; idx < s.row_ptr()[r + 1]; ++idx) {
      const int j = s.col_idx()[idx];
      const double v = s.values()[idx];
      for (int c = 0; c < dense_cols; ++c) ref(j, c) += v * b(r, c);
    }
  }
  EXPECT_TRUE(y1 == ref);
}

}  // namespace
}  // namespace graphalign
