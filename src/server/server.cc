#include "server/server.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <exception>
#include <iterator>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "align/aligner.h"
#include "bench_framework/experiment.h"
#include "common/deadline.h"
#include "common/failpoint.h"
#include "common/subprocess.h"
#include "common/timer.h"
#include "jobs/manager.h"
#include "metrics/metrics.h"
#include "server/cache_store.h"
#include "server/protocol.h"
#include "store/graph_store.h"

namespace graphalign {

namespace {

// Converts between the wire's fixed-width mapping and the library Alignment.
Alignment ToAlignment(const std::vector<int32_t>& wire) {
  return Alignment(wire.begin(), wire.end());
}

std::vector<int32_t> ToWireMapping(const Alignment& alignment) {
  return std::vector<int32_t>(alignment.begin(), alignment.end());
}

void SetSocketTimeouts(int fd, double seconds) {
  if (seconds <= 0.0) return;
  struct timeval tv;
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec =
      static_cast<suseconds_t>((seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

Result<AssignmentMethod> ParseAssignMethod(const std::string& assign) {
  if (assign == "NN") return AssignmentMethod::kNearestNeighbor;
  if (assign == "SG") return AssignmentMethod::kSortGreedy;
  if (assign == "MWM") return AssignmentMethod::kHungarian;
  if (assign == "JV") return AssignmentMethod::kJonkerVolgenant;
  return Status::InvalidArgument("unknown assignment method: " + assign);
}

// The isolated align child reports back either a result or a typed error
// through the payload pipe: u8 ok, then AlignResult bytes or (u8 code,
// string message).
std::string EncodeChildOutcome(const AlignResult& result) {
  ByteWriter w;
  w.U8(1);
  const std::string body = EncodeAlignResult(result);
  w.Str(body);
  return w.Take();
}

std::string EncodeChildError(ResponseCode code, const std::string& message) {
  ByteWriter w;
  w.U8(0);
  w.U8(static_cast<uint8_t>(code));
  w.Str(message);
  return w.Take();
}

// Per-job alignment parameters, independent of how the graphs arrived
// (inline, by-hash, or through a batch graph table).
struct AlignSpec {
  std::string algo;
  std::string assign;
  uint64_t deadline_ms = 0;
  uint64_t mem_limit_mb = 0;
  bool no_cache = false;
};

double ElapsedSeconds(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       since)
      .count();
}

// Wall-clock Unix time for job journal timestamps (steady_clock cannot be
// persisted across restarts).
uint64_t UnixMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

// Backoff hints attached to transient rejections (Retry-After over HTTP).
// BUSY/SHED clear quickly once the queue moves; a drain means "find another
// instance", which deserves a longer pause.
constexpr uint64_t kBusyRetryAfterMs = 250;
constexpr uint64_t kShedRetryAfterMs = 250;
constexpr uint64_t kDrainRetryAfterMs = 1000;

// A job's stored terminal code is replayed from disk; map anything that is
// not a known response code to a plain ERROR instead of leaking raw bytes
// onto the wire.
ResponseCode TerminalResponseCode(uint32_t code) {
  switch (static_cast<ResponseCode>(code)) {
    case ResponseCode::kOk:
    case ResponseCode::kError:
    case ResponseCode::kBusy:
    case ResponseCode::kBadRequest:
    case ResponseCode::kDnf:
    case ResponseCode::kCrash:
    case ResponseCode::kOom:
    case ResponseCode::kNumerical:
    case ResponseCode::kShed:
    case ResponseCode::kQuarantined:
    case ResponseCode::kShuttingDown:
    case ResponseCode::kNoGraph:
    case ResponseCode::kPartial:
    case ResponseCode::kAccepted:
    case ResponseCode::kNoJob:
    case ResponseCode::kConflict:
      return static_cast<ResponseCode>(code);
  }
  return ResponseCode::kError;
}

bool DecodeChildOutcome(std::string_view payload, Response* response) {
  ByteReader r(payload);
  uint8_t ok = 0;
  if (!r.U8(&ok)) return false;
  if (ok != 0) {
    std::string body;
    if (!r.Str(&body, kMaxFramePayload) || !r.AtEnd()) return false;
    response->code = ResponseCode::kOk;
    response->body = std::move(body);
    return true;
  }
  uint8_t code = 0;
  std::string message;
  if (!r.U8(&code) || !r.Str(&message, kMaxFramePayload) || !r.AtEnd()) {
    return false;
  }
  response->code = static_cast<ResponseCode>(code);
  response->message = std::move(message);
  return true;
}

}  // namespace

class Server::Impl {
 private:
  struct QueueEntry {
    int fd;
    std::chrono::steady_clock::time_point enqueued;
  };

  // One slot per worker thread. The worker arms it (deadline/start, then a
  // release store of active) around each isolated fork; the watchdog reads
  // active with acquire and flips cancel, which the fork's poll loop turns
  // into a SIGKILL. A deque, not a vector: atomics are immovable and the
  // slots must never relocate while the watchdog walks them.
  struct WorkerSlot {
    std::atomic<bool> active{false};
    std::atomic<bool> cancel{false};
    std::chrono::steady_clock::time_point start;
    uint64_t deadline_ms = 0;
    std::atomic<uint64_t> restarts{0};
  };

  struct QuotaBucket {
    double tokens = 0.0;
    std::chrono::steady_clock::time_point last_refill;
  };

  struct FaultRecord {
    int consecutive = 0;
    bool quarantined = false;
  };

 public:
  explicit Impl(const ServerOptions& options)
      : options_(options),
        cache_(static_cast<int64_t>(options.cache_mb * 1024.0 * 1024.0)) {}

  ~Impl() {
    Shutdown();
    Wait();
    if (listen_fd_ >= 0) close(listen_fd_);
    if (!bound_socket_path_.empty()) unlink(bound_socket_path_.c_str());
  }

  Status Bind() {
    if (!options_.socket_path.empty() && options_.port >= 0) {
      return Status::InvalidArgument(
          "server: choose one transport (--socket or --port), not both");
    }
    if (options_.socket_path.empty() && options_.port < 0) {
      return Status::InvalidArgument(
          "server: a Unix socket path or a TCP port is required");
    }
    if (options_.workers <= 0) {
      return Status::InvalidArgument("server: workers must be positive");
    }
    if (options_.cache_mb <= 0.0) {
      return Status::InvalidArgument("server: cache capacity must be positive");
    }
    if (!options_.socket_path.empty()) return BindUnix();
    return BindTcp();
  }

  Status Start() {
    if (listen_fd_ < 0) {
      return Status::FailedPrecondition("server: not bound");
    }
    const int queue_capacity = options_.queue_capacity > 0
                                   ? options_.queue_capacity
                                   : 2 * options_.workers;
    queue_capacity_ = queue_capacity;
    start_time_ = std::chrono::steady_clock::now();
    if (!options_.cache_dir.empty()) {
      // Warm restart: replay the durable log into the in-memory cache. A
      // broken log costs warmth, never startup.
      auto store = CacheStore::Open(
          options_.cache_dir,
          [this](uint64_t key, std::string value) {
            cache_.Put(key, std::move(value));
          },
          &replay_stats_);
      if (store.ok()) {
        store_ = *std::move(store);
      } else {
        cache_open_errors_.fetch_add(1, std::memory_order_relaxed);
        std::fprintf(stderr, "cache store disabled (cold cache): %s\n",
                     store.status().ToString().c_str());
      }
      if (store_ != nullptr && options_.cache_compact_mb > 0.0) {
        // Startup compaction: the replayed log may be mostly superseded
        // values and skipped residue; past the threshold, rewrite just the
        // live entries. Atomic publish — failure keeps the old log whole.
        const uint64_t threshold = static_cast<uint64_t>(
            options_.cache_compact_mb * 1024.0 * 1024.0);
        const uint64_t before = store_->log_bytes();
        if (before > threshold) {
          Status compacted = store_->Compact(cache_.Snapshot());
          if (compacted.ok()) {
            std::fprintf(stderr,
                         "cache log compacted: %llu -> %llu bytes\n",
                         static_cast<unsigned long long>(before),
                         static_cast<unsigned long long>(store_->log_bytes()));
          } else {
            std::fprintf(stderr, "cache log compaction failed (kept): %s\n",
                         compacted.ToString().c_str());
          }
        }
      }
    }
    if (!options_.store_dir.empty()) {
      // The graph store is an accelerator, never a startup dependency: if
      // the directory is unusable the daemon degrades to the wire-graph
      // path and says so — by-hash requests answer NO_GRAPH.
      auto graph_store = GraphStore::Open(options_.store_dir);
      if (graph_store.ok()) {
        graph_store_ = *std::move(graph_store);
      } else {
        store_unavailable_.store(1, std::memory_order_relaxed);
        std::fprintf(stderr,
                     "graph store disabled (wire-graph path only): %s\n",
                     graph_store.status().ToString().c_str());
      }
    }
    if (!options_.jobs_dir.empty()) {
      // Durable async jobs: replay the journal, resume interrupted work,
      // expire what the TTL says is stale. An unusable journal degrades the
      // daemon to synchronous-only — startup never fails because of it.
      JobManagerOptions jopts;
      jopts.dir = options_.jobs_dir;
      jopts.max_attempts =
          static_cast<uint32_t>(std::max(1, options_.job_attempts));
      jopts.ttl_seconds =
          static_cast<uint64_t>(std::max(0.0, options_.job_ttl_seconds));
      jopts.exhausted_terminal_code =
          static_cast<uint32_t>(ResponseCode::kCrash);
      auto jobs = JobManager::Open(jopts, UnixMs());
      if (jobs.ok()) {
        jobs_ = *std::move(jobs);
        Status gc = jobs_->Gc(UnixMs());
        if (!gc.ok()) {
          std::fprintf(stderr, "job journal gc failed (kept): %s\n",
                       gc.ToString().c_str());
        }
      } else {
        std::fprintf(stderr, "job subsystem disabled (synchronous only): %s\n",
                     jobs.status().ToString().c_str());
      }
    }
    // Job runners get watchdog slots of their own, after the workers', so
    // a hung job child is killed by the same scan that guards requests.
    const int job_workers =
        jobs_ != nullptr ? std::max(1, options_.job_workers) : 0;
    for (int w = 0; w < options_.workers + job_workers; ++w) {
      slots_.emplace_back();
    }
    for (int w = 0; w < options_.workers; ++w) {
      threads_.emplace_back([this, w] { WorkerLoop(&slots_[w]); });
    }
    for (int j = 0; j < job_workers; ++j) {
      const int s = options_.workers + j;
      threads_.emplace_back([this, s] { JobRunnerLoop(&slots_[s]); });
    }
    if (options_.watchdog_grace_seconds > 0.0) {
      threads_.emplace_back([this] { WatchdogLoop(); });
    }
    threads_.emplace_back([this] { AcceptLoop(); });
    return Status::Ok();
  }

  void Shutdown() {
    bool expected = false;
    if (!stopping_.compare_exchange_strong(expected, true)) return;
    if (jobs_ != nullptr) jobs_->Stop();  // Wake idle job runners to exit.
    // Unblock accept(); the fd itself is closed in the destructor so the
    // accept thread never races a reused descriptor number.
    if (listen_fd_ >= 0) shutdown(listen_fd_, SHUT_RDWR);
    std::lock_guard<std::mutex> lock(mu_);
    // Cut off idle-but-open and queued connections so workers notice.
    for (int fd : active_fds_) shutdown(fd, SHUT_RDWR);
    for (const QueueEntry& e : queue_) shutdown(e.fd, SHUT_RDWR);
    queue_cv_.notify_all();
    watchdog_cv_.notify_all();
  }

  void Drain() {
    bool expected = false;
    if (!draining_.compare_exchange_strong(expected, true)) return;
    if (stopping_.load(std::memory_order_relaxed)) return;  // Already harder.
    // Stop accepting; in-flight requests keep their sockets and finish.
    if (listen_fd_ >= 0) shutdown(listen_fd_, SHUT_RDWR);
    // Everyone still waiting for a worker gets a typed answer, not silence.
    std::deque<QueueEntry> waiting;
    {
      std::lock_guard<std::mutex> lock(mu_);
      waiting.swap(queue_);
      queue_cv_.notify_all();  // Idle workers see draining + empty queue.
      watchdog_cv_.notify_all();
    }
    Response shutting_down;
    shutting_down.code = ResponseCode::kShuttingDown;
    shutting_down.message = "server draining; resubmit to a live instance";
    shutting_down.retry_after_ms = kDrainRetryAfterMs;
    const std::string frame = EncodeResponse(shutting_down);
    for (const QueueEntry& e : waiting) {
      (void)WriteFrameToFd(e.fd, frame);
      close(e.fd);
    }
    // Seal the durable state: job runners stop claiming (in-flight jobs
    // finish and journal their own fsynced completion), and both logs get
    // an explicit final fsync so nothing rides on the per-append behavior.
    if (jobs_ != nullptr) {
      jobs_->Stop();
      Status sealed = jobs_->Seal();
      if (!sealed.ok()) {
        std::fprintf(stderr, "job journal seal failed: %s\n",
                     sealed.ToString().c_str());
      }
    }
    if (store_ != nullptr) {
      Status synced = store_->Sync();
      if (!synced.ok()) {
        std::fprintf(stderr, "cache log seal failed: %s\n",
                     synced.ToString().c_str());
      }
    }
  }

  void Wait() {
    std::vector<std::thread> threads;
    {
      std::lock_guard<std::mutex> lock(mu_);
      threads.swap(threads_);
    }
    for (std::thread& t : threads) t.join();
    // Close connections that were still queued when the plug was pulled.
    std::lock_guard<std::mutex> lock(mu_);
    for (const QueueEntry& e : queue_) close(e.fd);
    queue_.clear();
  }

  int port() const { return bound_port_; }

  ResultCache::Stats cache_stats() const { return cache_.GetStats(); }

  ServerStatsResult ServerStats() const {
    ServerStatsResult s;
    s.workers = static_cast<uint64_t>(options_.workers);
    s.uptime_seconds = ElapsedSeconds(start_time_);
    s.accepted = accepted_.load(std::memory_order_relaxed);
    s.served = served_.load(std::memory_order_relaxed);
    s.busy_rejected = busy_rejected_.load(std::memory_order_relaxed);
    s.quota_rejected = quota_rejected_.load(std::memory_order_relaxed);
    s.shed = shed_.load(std::memory_order_relaxed);
    s.quarantined = quarantined_responses_.load(std::memory_order_relaxed);
    s.quarantined_signatures =
        quarantined_signatures_.load(std::memory_order_relaxed);
    s.watchdog_kills = watchdog_kills_.load(std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mu_);
      s.queue_depth = queue_.size();
      s.in_flight = active_fds_.size();
    }
    s.cache_replayed = replay_stats_.replayed;
    s.cache_crc_skipped = replay_stats_.crc_skipped;
    s.cache_truncated_bytes = replay_stats_.truncated_bytes;
    s.cache_append_errors = store_ != nullptr ? store_->append_errors() : 0;
    s.cache_open_errors = cache_open_errors_.load(std::memory_order_relaxed);
    if (graph_store_ != nullptr) {
      const GraphStore::Counters c = graph_store_->counters();
      s.store_puts = c.puts;
      s.store_gets = c.gets;
      s.store_corrupt = c.corrupt;
      s.store_missing = c.missing;
    }
    s.store_unavailable = store_unavailable_.load(std::memory_order_relaxed);
    s.served_http = served_http_.load(std::memory_order_relaxed);
    s.quota_rejected_http =
        quota_rejected_http_.load(std::memory_order_relaxed);
    s.shed_http = shed_http_.load(std::memory_order_relaxed);
    s.batches = batches_.load(std::memory_order_relaxed);
    s.batch_jobs = batch_jobs_.load(std::memory_order_relaxed);
    s.batch_cache_hits = batch_cache_hits_.load(std::memory_order_relaxed);
    s.batch_graph_loads = batch_graph_loads_.load(std::memory_order_relaxed);
    if (jobs_ != nullptr) {
      const JobManagerStats j = jobs_->Stats();
      s.jobs_submitted = j.submitted;
      s.jobs_deduped = j.deduped;
      s.jobs_done = j.done;
      s.jobs_failed = j.failed;
      s.jobs_cancelled = j.cancelled;
      s.jobs_executions = j.executions;
      s.jobs_recovered = j.recovered;
      s.jobs_pending = j.pending;
    }
    for (const WorkerSlot& slot : slots_) {
      s.worker_restarts.push_back(
          slot.restarts.load(std::memory_order_relaxed));
    }
    return s;
  }

 private:
  Status BindUnix() {
    struct sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument(
          "server: socket path longer than sockaddr_un allows (" +
          std::to_string(sizeof(addr.sun_path) - 1) + " bytes): " +
          options_.socket_path);
    }
    std::strncpy(addr.sun_path, options_.socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      return Status::Internal("socket() failed: " +
                              std::string(strerror(errno)));
    }
    // A stale socket file from a dead daemon would make bind fail; remove
    // it. A *live* daemon still serving on the path loses its file but
    // keeps its connections — running two daemons on one path is an
    // operator error this cannot fully protect against.
    unlink(options_.socket_path.c_str());
    if (bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      const std::string detail = strerror(errno);
      close(fd);
      return Status::Internal("bind(" + options_.socket_path +
                              ") failed: " + detail);
    }
    if (listen(fd, 64) != 0) {
      const std::string detail = strerror(errno);
      close(fd);
      return Status::Internal("listen() failed: " + detail);
    }
    listen_fd_ = fd;
    bound_socket_path_ = options_.socket_path;
    return Status::Ok();
  }

  Status BindTcp() {
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      return Status::Internal("socket() failed: " +
                              std::string(strerror(errno)));
    }
    const int one = 1;
    setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(options_.port));
    if (bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      const std::string detail = strerror(errno);
      close(fd);
      return Status::Internal("bind(127.0.0.1:" +
                              std::to_string(options_.port) +
                              ") failed: " + detail);
    }
    if (listen(fd, 64) != 0) {
      const std::string detail = strerror(errno);
      close(fd);
      return Status::Internal("listen() failed: " + detail);
    }
    socklen_t len = sizeof(addr);
    if (getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) ==
        0) {
      bound_port_ = ntohs(addr.sin_port);
    }
    listen_fd_ = fd;
    return Status::Ok();
  }

  // -------------------------------------------------------------------------
  // Accept loop with admission control.

  void AcceptLoop() {
    // Accepting and turning away overload is queue-and-socket work only;
    // nothing an isolated child could depend on, so the thread is
    // fork-tolerant by the same argument as the workers.
    ScopedForkTolerantThread fork_tolerant;
    while (!stopping_.load(std::memory_order_relaxed)) {
      const int fd = accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        break;  // Listening socket shut down (or a fatal accept error).
      }
      if (stopping_.load(std::memory_order_relaxed)) {
        close(fd);
        break;
      }
      SetSocketTimeouts(fd, options_.io_timeout_seconds);
      if (draining_.load(std::memory_order_relaxed)) {
        // Raced a drain: this connection was accepted but must not queue.
        Response shutting_down;
        shutting_down.code = ResponseCode::kShuttingDown;
        shutting_down.message = "server draining; resubmit to a live instance";
        shutting_down.retry_after_ms = kDrainRetryAfterMs;
        (void)WriteFrameToFd(fd, EncodeResponse(shutting_down));
        close(fd);
        continue;
      }
      accepted_.fetch_add(1, std::memory_order_relaxed);
      bool admitted = false;
      // The failpoint forces the BUSY path without actually filling the
      // queue (for retry-round-trip tests).
      if (!GA_FAILPOINT_FIRED("server.busy")) {
        std::lock_guard<std::mutex> lock(mu_);
        if (static_cast<int>(queue_.size()) < queue_capacity_) {
          queue_.push_back(QueueEntry{fd, std::chrono::steady_clock::now()});
          admitted = true;
          queue_cv_.notify_one();
        }
      }
      if (!admitted) {
        // Typed BUSY, then hang up. The frame is a few dozen bytes — it
        // fits the socket send buffer, so this cannot stall the loop.
        busy_rejected_.fetch_add(1, std::memory_order_relaxed);
        Response busy;
        busy.code = ResponseCode::kBusy;
        busy.message = "admission queue full (" +
                       std::to_string(queue_capacity_) + " waiting)";
        busy.retry_after_ms = kBusyRetryAfterMs;
        (void)WriteFrameToFd(fd, EncodeResponse(busy));
        close(fd);
      }
    }
  }

  // -------------------------------------------------------------------------
  // Workers.

  void WorkerLoop(WorkerSlot* slot) {
    // Workers fork isolated align children while siblings serve; the child
    // never touches the queue, the cache, or any server lock, which is what
    // makes this thread safe to fork under (see common/subprocess.h).
    ScopedForkTolerantThread fork_tolerant;
    for (;;) {
      int fd = -1;
      double queue_wait_ms = 0.0;
      {
        std::unique_lock<std::mutex> lock(mu_);
        queue_cv_.wait(lock, [this] {
          return stopping_.load(std::memory_order_relaxed) ||
                 draining_.load(std::memory_order_relaxed) || !queue_.empty();
        });
        if (queue_.empty()) return;  // Stopping/draining and drained.
        const QueueEntry entry = queue_.front();
        queue_.pop_front();
        fd = entry.fd;
        queue_wait_ms = ElapsedSeconds(entry.enqueued) * 1000.0;
        active_fds_.insert(fd);
      }
      // A worker failure between dequeue and reply must not leave the
      // client blocked on a response that will never come: whatever escapes
      // ServeConnection is converted to a typed error frame (best effort)
      // before the socket closes.
      try {
        if (GA_FAILPOINT_FIRED("server.worker.drop")) {
          throw std::runtime_error("injected worker fault");
        }
        ServeConnection(fd, slot, queue_wait_ms);
      } catch (const std::exception& e) {
        Response err;
        err.code = ResponseCode::kError;
        err.message = std::string("worker failed mid-request: ") + e.what();
        (void)WriteFrameToFd(fd, EncodeResponse(err));
      } catch (...) {
        Response err;
        err.code = ResponseCode::kError;
        err.message = "worker failed mid-request";
        (void)WriteFrameToFd(fd, EncodeResponse(err));
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        active_fds_.erase(fd);
      }
      close(fd);
      if (stopping_.load(std::memory_order_relaxed)) return;
    }
  }

  // A watchdog scan wakes every 200ms (or immediately on shutdown), looks
  // for armed worker slots whose isolated child has outlived its request
  // deadline by more than watchdog_grace_seconds, and flips the slot's
  // cancel flag; the fork's poll loop turns that into a SIGKILL within
  // ~50ms. The kill shows up to the worker as a cancel-tagged timeout, to
  // the client as a typed ERROR, and in the stats as a watchdog kill plus a
  // restart on that worker's counter.
  void WatchdogLoop() {
    ScopedForkTolerantThread fork_tolerant;
    // Own condition variable: the watchdog must never absorb a
    // queue_cv_.notify_one() meant to hand a connection to a worker.
    std::unique_lock<std::mutex> lock(mu_);
    while (!stopping_.load(std::memory_order_relaxed) &&
           !draining_.load(std::memory_order_relaxed)) {
      watchdog_cv_.wait_for(lock, std::chrono::milliseconds(200), [this] {
        return stopping_.load(std::memory_order_relaxed) ||
               draining_.load(std::memory_order_relaxed);
      });
      if (stopping_.load(std::memory_order_relaxed) ||
          draining_.load(std::memory_order_relaxed)) {
        return;  // Drain-phase stragglers still hit the wall backstop.
      }
      lock.unlock();
      for (WorkerSlot& slot : slots_) {
        if (!slot.active.load(std::memory_order_acquire)) continue;
        if (slot.deadline_ms == 0) continue;  // Backstop-only request.
        const double limit = static_cast<double>(slot.deadline_ms) / 1000.0 +
                             options_.watchdog_grace_seconds;
        if (ElapsedSeconds(slot.start) > limit &&
            !slot.cancel.exchange(true, std::memory_order_relaxed)) {
          watchdog_kills_.fetch_add(1, std::memory_order_relaxed);
          slot.restarts.fetch_add(1, std::memory_order_relaxed);
        }
      }
      // Piggyback periodic job GC on the watchdog cadence (~every 60s of
      // 200ms scans): expire terminal jobs past their TTL and compact the
      // journal once it has grown past the threshold.
      if (jobs_ != nullptr && ++job_gc_ticks_ >= 300) {
        job_gc_ticks_ = 0;
        Status gc = jobs_->Gc(UnixMs());
        if (!gc.ok()) {
          std::fprintf(stderr, "job journal gc failed (kept): %s\n",
                       gc.ToString().c_str());
        }
      }
      lock.lock();
    }
  }

  void ServeConnection(int fd, WorkerSlot* slot, double queue_wait_ms) {
    // One connection may carry a sequence of frames; each gets a response.
    for (;;) {
      std::string payload;
      auto frame = ReadFrameFromFd(fd, &payload);
      if (!frame.ok()) {
        // Truncated/garbage/oversized/timed-out input: answer with a typed
        // protocol error (best effort) and hang up — after garbage there is
        // no trustworthy frame boundary to resynchronize on.
        Response bad;
        bad.code = ResponseCode::kBadRequest;
        bad.message = frame.status().ToString();
        (void)WriteFrameToFd(fd, EncodeResponse(bad));
        return;
      }
      if (!*frame) return;  // Clean close.

      WallTimer timer;
      bool shutdown_after = false;
      Response response;
      auto request = DecodeRequest(payload);
      if (!request.ok()) {
        response.code = ResponseCode::kBadRequest;
        response.message = request.status().ToString();
      } else {
        response = HandleRequest(*request, &shutdown_after, slot, queue_wait_ms);
      }
      // Only the first frame on a connection waited in the admission queue;
      // later frames arrive on an already-claimed worker.
      queue_wait_ms = 0.0;
      response.elapsed_us = static_cast<uint64_t>(timer.Seconds() * 1e6);
      if (!WriteFrameToFd(fd, EncodeResponse(response)).ok()) return;
      served_.fetch_add(1, std::memory_order_relaxed);
      if (request.ok() && request->transport == Transport::kHttp) {
        served_http_.fetch_add(1, std::memory_order_relaxed);
      }
      if (shutdown_after) {
        Shutdown();
        return;
      }
      if (response.code == ResponseCode::kBadRequest) return;
      if (stopping_.load(std::memory_order_relaxed)) return;
      // Draining: the in-flight request above was honored; further frames
      // on this connection belong to a live instance.
      if (draining_.load(std::memory_order_relaxed)) return;
    }
  }

  Response HandleRequest(const Request& request, bool* shutdown_after,
                         WorkerSlot* slot, double queue_wait_ms) {
    if (GA_FAILPOINT_FIRED("server.request.error")) {
      return ErrorResponse(ResponseCode::kError,
                           "failpoint server.request.error: injected fault");
    }
    switch (request.type) {
      case RequestType::kPing: {
        Response response;
        response.message = "pong";
        return response;
      }
      case RequestType::kShutdown: {
        *shutdown_after = true;
        Response response;
        response.message = "shutting down";
        return response;
      }
      case RequestType::kCacheInfo: {
        const ResultCache::Stats stats = cache_.GetStats();
        CacheInfoResult info;
        info.hits = stats.hits;
        info.misses = stats.misses;
        info.evictions = stats.evictions;
        info.entries = stats.entries;
        info.bytes = stats.bytes;
        info.capacity_bytes = stats.capacity_bytes;
        Response response;
        response.body = EncodeCacheInfoResult(info);
        return response;
      }
      case RequestType::kServerStats: {
        Response response;
        response.body = EncodeServerStatsResult(ServerStats());
        return response;
      }
      case RequestType::kAlign: {
        if (options_.quota_rps > 0.0 && !TakeQuotaToken(request.client)) {
          return QuotaRejected(request);
        }
        return HandleAlign(request.align, slot, queue_wait_ms,
                           request.transport);
      }
      case RequestType::kAlignBatch: {
        // One quota token admits the whole batch: amortized admission is
        // part of what batching buys (kMaxBatchJobs bounds the skew a
        // batch can extract from a per-request quota).
        if (options_.quota_rps > 0.0 && !TakeQuotaToken(request.client)) {
          return QuotaRejected(request);
        }
        return HandleAlignBatch(request.align_batch, slot, queue_wait_ms,
                                request.transport);
      }
      case RequestType::kEvaluate:
        return HandleEvaluate(request.evaluate);
      case RequestType::kStats:
        return HandleStats(request.stats);
      case RequestType::kPutGraph:
        return HandlePutGraph(request.put_graph);
      case RequestType::kHasGraph:
        return HandleHasGraph(request.has_graph);
      case RequestType::kSubmitJob: {
        // Async submission spends a quota token like the synchronous align
        // it defers — otherwise jobs would be a quota bypass.
        if (options_.quota_rps > 0.0 && !TakeQuotaToken(request.client)) {
          return QuotaRejected(request);
        }
        return HandleSubmitJob(request.submit_job);
      }
      case RequestType::kJobStatus:
        return HandleJobStatus(request.job_id.job_id);
      case RequestType::kJobResult:
        return HandleJobResult(request.job_id.job_id);
      case RequestType::kCancelJob:
        return HandleCancelJob(request.job_id.job_id);
    }
    Response response;
    response.code = ResponseCode::kBadRequest;
    response.message = "unhandled request type";
    return response;
  }

  static Response ErrorResponse(ResponseCode code, std::string message) {
    Response response;
    response.code = code;
    response.message = std::move(message);
    return response;
  }

  Response QuotaRejected(const Request& request) {
    quota_rejected_.fetch_add(1, std::memory_order_relaxed);
    if (request.transport == Transport::kHttp) {
      quota_rejected_http_.fetch_add(1, std::memory_order_relaxed);
    }
    Response response = ErrorResponse(
        ResponseCode::kBusy,
        "client \"" +
            (request.client.empty() ? std::string("anon") : request.client) +
            "\" exceeded its quota of " + std::to_string(options_.quota_rps) +
            " align requests/s; back off and retry");
    // Hint: roughly the time until the bucket refills one token.
    response.retry_after_ms = static_cast<uint64_t>(std::clamp(
        1000.0 / options_.quota_rps, 100.0, 10000.0));
    return response;
  }

  // Per-client token bucket: refill at quota_rps, burst of 2 seconds' worth
  // (at least one token so a slow client is never starved outright). The
  // empty client name shares one "anon" bucket — unidentified traffic
  // competes with itself, not with named clients.
  bool TakeQuotaToken(const std::string& client_in) {
    const std::string client = client_in.empty() ? "anon" : client_in;
    const auto now = std::chrono::steady_clock::now();
    const double burst = std::max(1.0, 2.0 * options_.quota_rps);
    std::lock_guard<std::mutex> lock(quota_mu_);
    if (quota_.size() >= kMaxTrackedClients &&
        quota_.find(client) == quota_.end()) {
      // Bound memory under a churn of one-shot client names. Dropping the
      // table refills everyone once; fairness recovers within a burst.
      quota_.clear();
    }
    auto [it, inserted] = quota_.try_emplace(client, QuotaBucket{burst, now});
    QuotaBucket& bucket = it->second;
    if (!inserted) {
      bucket.tokens =
          std::min(burst, bucket.tokens + ElapsedSeconds(bucket.last_refill) *
                                              options_.quota_rps);
      bucket.last_refill = now;
    }
    if (bucket.tokens < 1.0) return false;
    bucket.tokens -= 1.0;
    return true;
  }

  bool IsQuarantined(uint64_t fault_key) {
    std::lock_guard<std::mutex> lock(fault_mu_);
    auto it = faults_.find(fault_key);
    return it != faults_.end() && it->second.quarantined;
  }

  void RecordFault(uint64_t fault_key) {
    if (options_.quarantine_threshold <= 0) return;
    std::lock_guard<std::mutex> lock(fault_mu_);
    if (faults_.size() >= kMaxTrackedFaults &&
        faults_.find(fault_key) == faults_.end()) {
      // Bound memory under a sweep of distinct crashing signatures: keep
      // the confirmed-poison entries, forget the in-progress counts.
      for (auto it = faults_.begin(); it != faults_.end();) {
        it = it->second.quarantined ? std::next(it) : faults_.erase(it);
      }
    }
    FaultRecord& rec = faults_[fault_key];
    if (rec.quarantined) return;
    if (++rec.consecutive >= options_.quarantine_threshold) {
      rec.quarantined = true;
      quarantined_signatures_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  void ClearFault(uint64_t fault_key) {
    if (options_.quarantine_threshold <= 0) return;
    std::lock_guard<std::mutex> lock(fault_mu_);
    auto it = faults_.find(fault_key);
    // A success after quarantine does not lift it: flaky poison is still
    // poison, and un-quarantining on luck would re-admit the crash loop.
    if (it != faults_.end() && !it->second.quarantined) faults_.erase(it);
  }

  Response HandlePutGraph(const PutGraphRequest& req) {
    if (graph_store_ == nullptr) {
      return ErrorResponse(ResponseCode::kError,
                           "graph store disabled on this daemon (start with "
                           "--store-dir); submit inline graphs instead");
    }
    auto g = Graph::FromEdges(req.g.num_nodes, req.g.edges);
    if (!g.ok()) {
      return ErrorResponse(ResponseCode::kBadRequest,
                           "graph: " + g.status().ToString());
    }
    bool already = false;
    auto hash = graph_store_->Put(*g, &already);
    if (!hash.ok()) {
      return ErrorResponse(ResponseCode::kError, hash.status().ToString());
    }
    PutGraphResult result;
    result.content_hash = *hash;
    result.already_present = already;
    Response response;
    response.body = EncodePutGraphResult(result);
    return response;
  }

  Response HandleHasGraph(const HasGraphRequest& req) {
    HasGraphResult result;
    result.present = graph_store_ != nullptr && graph_store_->Has(req.hash);
    Response response;
    response.body = EncodeHasGraphResult(result);
    return response;
  }

  // -------------------------------------------------------------------------
  // Durable async jobs (DESIGN.md §17).

  static JobInfo ToJobInfo(const JobRecord& rec, bool existing) {
    JobInfo info;
    info.job_id = rec.job_id;
    info.state = static_cast<uint32_t>(rec.state);
    info.state_name = JobStateName(rec.state);
    info.attempts = rec.attempts;
    info.max_attempts = rec.max_attempts;
    info.submitted_unix_ms = rec.submitted_unix_ms;
    info.updated_unix_ms = rec.updated_unix_ms;
    info.terminal_code = rec.terminal_code;
    info.message = rec.message;
    info.existing = existing;
    return info;
  }

  Response JobsDisabled() {
    return ErrorResponse(ResponseCode::kError,
                         "job subsystem disabled on this daemon (start with "
                         "--jobs-dir); use a synchronous align instead");
  }

  Response HandleSubmitJob(const SubmitJobRequest& req) {
    if (jobs_ == nullptr) return JobsDisabled();
    // Validate what the parent can check cheaply — an unknown algorithm or
    // assignment is a client mistake that deserves an immediate BAD_REQUEST,
    // not a journaled job doomed to FAILED.
    if (MakeFaultAligner(req.align.algo) == nullptr) {
      auto made = MakeAligner(req.align.algo);
      if (!made.ok()) {
        return ErrorResponse(ResponseCode::kBadRequest,
                             made.status().ToString());
      }
    }
    if (req.align.assign != "native") {
      auto parsed = ParseAssignMethod(req.align.assign);
      if (!parsed.ok()) {
        return ErrorResponse(ResponseCode::kBadRequest,
                             parsed.status().ToString());
      }
    }
    if (req.align.by_hash && graph_store_ == nullptr) {
      return ErrorResponse(
          ResponseCode::kNoGraph,
          "submit-by-hash jobs need a graph store, and this daemon has none "
          "(start it with --store-dir); submit inline graphs instead");
    }
    auto out = jobs_->Submit(req.idem_key, EncodeAlignSpec(req.align),
                             UnixMs());
    if (!out.ok()) {
      switch (out.status().code()) {
        case StatusCode::kFailedPrecondition:  // Idempotency-key conflict.
          return ErrorResponse(ResponseCode::kConflict,
                               out.status().message());
        case StatusCode::kInvalidArgument:
          return ErrorResponse(ResponseCode::kBadRequest,
                               out.status().message());
        default:  // Journal append failure: the job was refused, retryable.
          return ErrorResponse(ResponseCode::kError,
                               out.status().ToString());
      }
    }
    Response response;
    response.code = ResponseCode::kAccepted;
    response.message = out->existing
                           ? "deduplicated onto existing job; poll its id"
                           : "job accepted; poll its id";
    response.body = EncodeJobInfo(ToJobInfo(out->record, out->existing));
    return response;
  }

  Response HandleJobStatus(uint64_t job_id) {
    if (jobs_ == nullptr) return JobsDisabled();
    auto rec = jobs_->Get(job_id);
    if (!rec.ok()) {
      return ErrorResponse(ResponseCode::kNoJob, rec.status().message());
    }
    Response response;
    response.body = EncodeJobInfo(ToJobInfo(*rec, false));
    return response;
  }

  Response HandleJobResult(uint64_t job_id) {
    if (jobs_ == nullptr) return JobsDisabled();
    auto rec = jobs_->Get(job_id);
    if (!rec.ok()) {
      return ErrorResponse(ResponseCode::kNoJob, rec.status().message());
    }
    switch (rec->state) {
      case JobState::kDone: {
        // The stored result IS an encoded AlignResult — byte-identical to
        // what the synchronous align path would have answered.
        Response response;
        response.body = rec->result_bytes;
        return response;
      }
      case JobState::kFailed:
      case JobState::kQuarantined:
        return ErrorResponse(
            TerminalResponseCode(rec->terminal_code),
            rec->message.empty() ? "job failed" : rec->message);
      case JobState::kCancelled:
        return ErrorResponse(ResponseCode::kConflict,
                             "job " + std::to_string(job_id) +
                                 " was cancelled; it has no result");
      case JobState::kAccepted:
      case JobState::kRunning: {
        Response response;
        response.code = ResponseCode::kAccepted;
        response.message = "job not finished; poll status";
        response.body = EncodeJobInfo(ToJobInfo(*rec, false));
        return response;
      }
    }
    return ErrorResponse(ResponseCode::kError, "job in unknown state");
  }

  Response HandleCancelJob(uint64_t job_id) {
    if (jobs_ == nullptr) return JobsDisabled();
    auto rec = jobs_->Cancel(job_id, UnixMs());
    if (!rec.ok()) {
      switch (rec.status().code()) {
        case StatusCode::kNotFound:
          return ErrorResponse(ResponseCode::kNoJob,
                               rec.status().message());
        case StatusCode::kFailedPrecondition:  // Already terminal.
          return ErrorResponse(ResponseCode::kConflict,
                               rec.status().message());
        default:
          return ErrorResponse(ResponseCode::kError,
                               rec.status().ToString());
      }
    }
    Response response;
    response.message = "job cancelled";
    response.body = EncodeJobInfo(ToJobInfo(*rec, false));
    return response;
  }

  // Dedicated runner: claim → execute through the same isolated-fork path a
  // synchronous align uses → journal the completion. Each runner owns a
  // watchdog slot, so a hung job child is killed like a hung request child.
  void JobRunnerLoop(WorkerSlot* slot) {
    ScopedForkTolerantThread fork_tolerant;
    JobRecord job;
    std::shared_ptr<std::atomic<bool>> cancel;
    while (jobs_->ClaimNext(&job, &cancel)) {
      // Hold point for crash tests: arming jobs.exec.delay with delay-ms:N
      // pins the claimed job in RUNNING long enough to kill -9 the daemon.
      (void)GA_FAILPOINT_FIRED("jobs.exec.delay");
      RunJob(job, cancel.get(), slot);
      if (stopping_.load(std::memory_order_relaxed)) return;
    }
  }

  void RunJob(const JobRecord& job, const std::atomic<bool>* cancel,
              WorkerSlot* slot) {
    auto spec = DecodeAlignSpec(job.spec_bytes);
    if (!spec.ok()) {
      // Journal-resident spec no longer decodes (version skew, bit rot that
      // passed CRC): terminal, typed, never retried.
      (void)jobs_->CompleteFailed(
          job.job_id, static_cast<uint32_t>(ResponseCode::kBadRequest),
          "job spec: " + spec.status().ToString(), /*quarantined=*/false,
          UnixMs());
      return;
    }
    Response r = HandleAlign(*spec, slot, /*queue_wait_ms=*/0.0,
                             Transport::kGaf1, cancel);
    const uint64_t now = UnixMs();
    if (r.code == ResponseCode::kOk) {
      (void)jobs_->CompleteDone(job.job_id, std::move(r.body), now);
    } else if (r.code == ResponseCode::kCrash ||
               r.code == ResponseCode::kOom) {
      // Crash-class outcomes retry up to the attempt budget; the quarantine
      // subsystem independently stops a signature that keeps crashing.
      (void)jobs_->CompleteRetryable(
          job.job_id,
          std::string(ResponseCodeName(r.code)) + ": " + r.message, now);
    } else {
      (void)jobs_->CompleteFailed(job.job_id,
                                  static_cast<uint32_t>(r.code), r.message,
                                  r.code == ResponseCode::kQuarantined, now);
    }
  }

  // Maps a failed store lookup for a by-hash align to a wire response.
  // Absent and corrupt(-now-quarantined) entries both mean the store does
  // not hold a usable copy: typed NO_GRAPH, the client re-uploads. Only
  // transient store trouble (kUnavailable) is a server-side error.
  static Response NoGraphResponse(const char* which, uint64_t hash,
                                  const Status& st) {
    if (st.code() == StatusCode::kNotFound ||
        st.code() == StatusCode::kCorrupt) {
      return ErrorResponse(
          ResponseCode::kNoGraph,
          std::string(which) + ": graph " + GraphStore::HashName(hash) +
              " is not in the store (" + st.ToString() +
              "); re-upload it with --put-graph and retry");
    }
    return ErrorResponse(ResponseCode::kError,
                         std::string(which) + ": " + st.ToString());
  }

  bool ShouldShed(uint64_t deadline_ms, double queue_wait_ms) const {
    return options_.shed && deadline_ms > 0 &&
           queue_wait_ms >= static_cast<double>(deadline_ms);
  }

  // Shed before any parsing: if the admission-queue wait already consumed
  // the client's deadline, every further cycle spent on this request is
  // guaranteed-late work stolen from requests that can still make it.
  Response ShedResponse(uint64_t deadline_ms, double queue_wait_ms,
                        Transport transport) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    if (transport == Transport::kHttp) {
      shed_http_.fetch_add(1, std::memory_order_relaxed);
    }
    Response response = ErrorResponse(
        ResponseCode::kShed,
        "shed: " + std::to_string(static_cast<int64_t>(queue_wait_ms)) +
            "ms of queue wait consumed the " + std::to_string(deadline_ms) +
            "ms deadline; retry against a less loaded instance");
    response.retry_after_ms = kShedRetryAfterMs;
    return response;
  }

  Response HandleAlign(const AlignRequest& req, WorkerSlot* slot,
                       double queue_wait_ms, Transport transport,
                       const std::atomic<bool>* extra_cancel = nullptr) {
    if (ShouldShed(req.deadline_ms, queue_wait_ms)) {
      return ShedResponse(req.deadline_ms, queue_wait_ms, transport);
    }
    Result<Graph> g1 = Graph();
    Result<Graph> g2 = Graph();
    if (req.by_hash) {
      // Submit-by-hash: resolve both graphs from the content-addressed
      // store. The Graph aims straight into the read-only mapping; the
      // forked worker below inherits and shares the physical pages.
      if (graph_store_ == nullptr) {
        return ErrorResponse(
            ResponseCode::kNoGraph,
            "align-by-hash needs a graph store, and this daemon has none "
            "(start it with --store-dir); submit inline graphs instead");
      }
      g1 = graph_store_->Get(req.g1_hash);
      if (!g1.ok()) return NoGraphResponse("g1", req.g1_hash, g1.status());
      g2 = graph_store_->Get(req.g2_hash);
      if (!g2.ok()) return NoGraphResponse("g2", req.g2_hash, g2.status());
    } else {
      g1 = Graph::FromEdges(req.g1.num_nodes, req.g1.edges);
      if (!g1.ok()) {
        return ErrorResponse(ResponseCode::kBadRequest,
                             "g1: " + g1.status().ToString());
      }
      g2 = Graph::FromEdges(req.g2.num_nodes, req.g2.edges);
      if (!g2.ok()) {
        return ErrorResponse(ResponseCode::kBadRequest,
                             "g2: " + g2.status().ToString());
      }
    }
    return AlignResolved(*g1, *g2,
                         AlignSpec{req.algo, req.assign, req.deadline_ms,
                                   req.mem_limit_mb, req.no_cache},
                         slot, extra_cancel);
  }

  Response QuarantinedResponse() {
    quarantined_responses_.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(
        ResponseCode::kQuarantined,
        "request signature quarantined: " +
            std::to_string(options_.quarantine_threshold) +
            " consecutive crash/OOM outcomes for this (g1, g2, algo); "
            "refusing to re-fork until restart");
  }

  // The post-resolution align path shared by kAlign and every kAlignBatch
  // job: algorithm/assignment validation, quarantine, cache consult, the
  // isolated fork, outcome mapping, and cache fill. Graph resolution stays
  // with the callers so a batch can amortize it across jobs.
  Response AlignResolved(const Graph& g1, const Graph& g2,
                         const AlignSpec& req, WorkerSlot* slot,
                         const std::atomic<bool>* extra_cancel = nullptr) {
    // Validate the algorithm and assignment up front, in the parent: an
    // unknown name is a client mistake, not a reason to fork.
    std::unique_ptr<Aligner> aligner = MakeFaultAligner(req.algo);
    if (aligner == nullptr) {
      auto made = MakeAligner(req.algo);
      if (!made.ok()) {
        return ErrorResponse(ResponseCode::kError, made.status().ToString());
      }
      aligner = std::move(*made);
    }
    const bool native = req.assign == "native";
    AssignmentMethod method = AssignmentMethod::kJonkerVolgenant;
    if (!native) {
      auto parsed = ParseAssignMethod(req.assign);
      if (!parsed.ok()) {
        return ErrorResponse(ResponseCode::kError, parsed.status().ToString());
      }
      method = *parsed;
    }

    // The quarantine signature deliberately ignores the assignment method:
    // a kernel that segfaults on this graph pair crashes before extraction
    // ever runs, so re-forking it under a different extractor is the same
    // crash with extra steps.
    const uint64_t fault_key = ResultCache::Key(
        g1.ContentHash(), g2.ContentHash(), req.algo, "!quarantine");
    if (options_.quarantine_threshold > 0 && IsQuarantined(fault_key)) {
      return QuarantinedResponse();
    }

    const uint64_t key = ResultCache::Key(g1.ContentHash(), g2.ContentHash(),
                                          req.algo, req.assign);
    if (!req.no_cache) {
      std::string cached;
      if (cache_.Get(key, &cached)) {
        Response response;
        response.cache_hit = true;
        response.body = std::move(cached);
        return response;
      }
    }

    SubprocessOptions isolation;
    if (req.mem_limit_mb > 0) {
      isolation.mem_limit_bytes =
          static_cast<int64_t>(req.mem_limit_mb) * 1024 * 1024;
    }
    isolation.wall_limit_seconds =
        req.deadline_ms > 0
            ? 2.0 * static_cast<double>(req.deadline_ms) / 1000.0 +
                  options_.wall_slack_seconds
            : options_.default_wall_limit_seconds;
    if (slot != nullptr) {
      // Arm the watchdog slot before forking: fields first, then the
      // release store the watchdog acquires them through.
      slot->deadline_ms =
          req.deadline_ms > 0 ? static_cast<uint64_t>(req.deadline_ms) : 0;
      slot->cancel.store(false, std::memory_order_relaxed);
      slot->start = std::chrono::steady_clock::now();
      slot->active.store(true, std::memory_order_release);
      // extra_cancel is the job subsystem's client-cancel flag: a cancelled
      // async job kills its in-flight child exactly like a watchdog would.
      isolation.cancel = [slot, extra_cancel] {
        return slot->cancel.load(std::memory_order_relaxed) ||
               (extra_cancel != nullptr &&
                extra_cancel->load(std::memory_order_relaxed));
      };
    } else if (extra_cancel != nullptr) {
      isolation.cancel = [extra_cancel] {
        return extra_cancel->load(std::memory_order_relaxed);
      };
    }

    auto run = RunIsolated(
        [&](int payload_fd) {
          const Deadline deadline =
              req.deadline_ms > 0
                  ? Deadline::AfterSeconds(
                        static_cast<double>(req.deadline_ms) / 1000.0)
                  : Deadline::Infinite();
          WallTimer align_timer;
          // Non-native requests take the fault-tolerant path: recoverable
          // numerical failures come back as degraded results, not errors.
          // Native extraction has no robust variant (the author-proposed
          // extraction is part of what it measures).
          Result<Alignment> alignment = Alignment{};
          bool degraded = false;
          std::string degrade_reason;
          if (native) {
            alignment = aligner->AlignNative(g1, g2, deadline);
          } else {
            auto robust = aligner->AlignRobust(g1, g2, method, deadline);
            if (robust.ok()) {
              degraded = robust->degraded;
              degrade_reason = robust->degrade_reason;
              alignment = std::move(robust->alignment);
            } else {
              alignment = robust.status();
            }
          }
          std::string outcome;
          if (!alignment.ok()) {
            ResponseCode code = ResponseCode::kError;
            if (alignment.status().code() == StatusCode::kDeadlineExceeded) {
              code = ResponseCode::kDnf;
            } else if (alignment.status().code() == StatusCode::kNumerical) {
              code = ResponseCode::kNumerical;
            }
            outcome = EncodeChildError(code, alignment.status().ToString());
          } else {
            AlignResult result;
            result.align_seconds = align_timer.Seconds();
            result.mnc =
                MeanMatchedNeighborhoodConsistency(g1, g2, *alignment);
            result.ec = EdgeCorrectness(g1, g2, *alignment);
            result.s3 = SymmetricSubstructureScore(g1, g2, *alignment);
            result.mapping = ToWireMapping(*alignment);
            result.degraded = degraded;
            result.degrade_reason = degrade_reason;
            outcome = EncodeChildOutcome(result);
          }
          return WritePayload(payload_fd, outcome) ? 0 : 1;
        },
        isolation);
    if (slot != nullptr) slot->active.store(false, std::memory_order_release);
    if (!run.ok()) {
      return ErrorResponse(ResponseCode::kError, run.status().ToString());
    }
    Response response;
    switch (run->status) {
      case RunStatus::kOk:
        ClearFault(fault_key);  // The kernel survived; not poison.
        if (!run->payload_valid || !DecodeChildOutcome(run->payload,
                                                       &response)) {
          return ErrorResponse(
              ResponseCode::kError,
              "isolated child exited cleanly but returned no result");
        }
        break;
      case RunStatus::kExit:
        return ErrorResponse(ResponseCode::kError,
                             "isolated child " + run->detail);
      case RunStatus::kCrash:
        RecordFault(fault_key);
        return ErrorResponse(ResponseCode::kCrash, run->detail);
      case RunStatus::kOom:
        RecordFault(fault_key);
        return ErrorResponse(ResponseCode::kOom, run->detail);
      case RunStatus::kTimeout:
        if (run->killed_on_cancel) {
          return ErrorResponse(
              ResponseCode::kError,
              "watchdog killed the isolated child: still running " +
                  std::to_string(options_.watchdog_grace_seconds) +
                  "s past its " + std::to_string(req.deadline_ms) +
                  "ms deadline");
        }
        return ErrorResponse(ResponseCode::kDnf,
                             "hard-killed at the wall-clock backstop after " +
                                 std::to_string(run->wall_seconds) + "s");
    }
    if (response.code == ResponseCode::kOk && !req.no_cache) {
      // Degraded results are not cached: once the numerical hiccup passes, a
      // fresh request deserves a fresh (clean) attempt, not a stale fallback.
      auto decoded = DecodeAlignResult(response.body);
      if (decoded.ok() && !decoded->degraded) {
        cache_.Put(key, response.body);
        if (store_ != nullptr) store_->Append(key, response.body);
      }
    }
    return response;
  }

  Response HandleAlignBatch(const AlignBatchRequest& req, WorkerSlot* slot,
                            double queue_wait_ms, Transport transport) {
    // Each graph-table entry resolves at most once — lazily, so a batch
    // answered entirely from the cache (or shed outright) opens nothing.
    // K jobs over two store graphs cost 2 store opens, not 2K.
    std::vector<std::unique_ptr<Graph>> resolved(req.graphs.size());
    std::vector<Response> resolve_errors(req.graphs.size());
    std::vector<bool> attempted(req.graphs.size(), false);
    uint32_t loads = 0;
    auto resolve = [&](uint32_t idx) -> const Graph* {
      if (!attempted[idx]) {
        attempted[idx] = true;
        const BatchGraphRef& ref = req.graphs[idx];
        if (ref.by_hash) {
          if (graph_store_ == nullptr) {
            resolve_errors[idx] = ErrorResponse(
                ResponseCode::kNoGraph,
                "batch graph " + std::to_string(idx) +
                    " is by-hash, and this daemon has no graph store (start "
                    "it with --store-dir); submit inline graphs instead");
          } else {
            auto g = graph_store_->Get(ref.hash);
            if (g.ok()) {
              resolved[idx] = std::make_unique<Graph>(*std::move(g));
              ++loads;
            } else {
              resolve_errors[idx] = NoGraphResponse(
                  ("batch graph " + std::to_string(idx)).c_str(), ref.hash,
                  g.status());
            }
          }
        } else {
          auto g = Graph::FromEdges(ref.inline_graph.num_nodes,
                                    ref.inline_graph.edges);
          if (g.ok()) {
            resolved[idx] = std::make_unique<Graph>(*std::move(g));
            ++loads;
          } else {
            resolve_errors[idx] = ErrorResponse(
                ResponseCode::kBadRequest,
                "batch graph " + std::to_string(idx) + ": " +
                    g.status().ToString());
          }
        }
      }
      return resolved[idx].get();
    };

    AlignBatchResult batch;
    batch.jobs.resize(req.jobs.size());
    uint64_t cache_hits = 0;
    for (size_t i = 0; i < req.jobs.size(); ++i) {
      const BatchJob& job = req.jobs[i];
      Response r;
      if (ShouldShed(job.deadline_ms, queue_wait_ms)) {
        // queue_wait_ms is the whole batch's admission wait; a job whose
        // deadline it consumed is shed exactly as a standalone kAlign
        // would be (jobs run serially, so later jobs have waited at least
        // this long too).
        r = ShedResponse(job.deadline_ms, queue_wait_ms, transport);
      } else {
        // By-hash jobs probe quarantine and the result cache with the table
        // hashes before resolving anything: the store is content-addressed,
        // so a graph's request hash IS its content hash, and an all-cached
        // batch therefore opens zero graphs.
        const BatchGraphRef& r1 = req.graphs[job.g1];
        const BatchGraphRef& r2 = req.graphs[job.g2];
        bool answered = false;
        if (r1.by_hash && r2.by_hash) {
          const uint64_t fault_key =
              ResultCache::Key(r1.hash, r2.hash, job.algo, "!quarantine");
          if (options_.quarantine_threshold > 0 && IsQuarantined(fault_key)) {
            r = QuarantinedResponse();
            answered = true;
          } else if (!job.no_cache) {
            std::string cached;
            if (cache_.Get(ResultCache::Key(r1.hash, r2.hash, job.algo,
                                            job.assign),
                           &cached)) {
              r.cache_hit = true;
              r.body = std::move(cached);
              answered = true;
            }
          }
        }
        if (!answered) {
          const Graph* g1 = resolve(job.g1);
          const Graph* g2 = resolve(job.g2);
          if (g1 == nullptr) {
            r = resolve_errors[job.g1];
          } else if (g2 == nullptr) {
            r = resolve_errors[job.g2];
          } else {
            r = AlignResolved(*g1, *g2,
                              AlignSpec{job.algo, job.assign, job.deadline_ms,
                                        job.mem_limit_mb, job.no_cache},
                              slot);
          }
        }
      }
      BatchJobOutcome& out = batch.jobs[i];
      out.code = r.code;
      out.cache_hit = r.cache_hit;
      out.message = std::move(r.message);
      if (r.code == ResponseCode::kOk) out.body = std::move(r.body);
      if (r.cache_hit) ++cache_hits;
    }
    batch.graph_loads = loads;

    batches_.fetch_add(1, std::memory_order_relaxed);
    batch_jobs_.fetch_add(req.jobs.size(), std::memory_order_relaxed);
    batch_cache_hits_.fetch_add(cache_hits, std::memory_order_relaxed);
    batch_graph_loads_.fetch_add(loads, std::memory_order_relaxed);

    // Top-level code: OK when every job is OK, the shared code when every
    // job failed the same way (so retry classification keeps working, e.g.
    // an all-SHED batch stays transient), PARTIAL on any mix.
    size_t failed = 0;
    bool mixed = false;
    for (const BatchJobOutcome& out : batch.jobs) {
      if (out.code != batch.jobs[0].code) mixed = true;
      if (out.code != ResponseCode::kOk) ++failed;
    }
    Response response;
    if (mixed) {
      response.code = ResponseCode::kPartial;
      response.message = std::to_string(failed) + " of " +
                         std::to_string(batch.jobs.size()) +
                         " batch jobs failed; see per-job outcomes";
    } else {
      response.code = batch.jobs[0].code;
      if (response.code != ResponseCode::kOk) {
        response.message = "all " + std::to_string(batch.jobs.size()) +
                           " batch jobs failed with " +
                           ResponseCodeName(response.code);
      }
      // All-hit batches surface as a cache hit, mirroring kAlign.
      response.cache_hit = cache_hits == batch.jobs.size();
    }
    response.body = EncodeAlignBatchResult(batch);
    return response;
  }

  Response HandleEvaluate(const EvaluateRequest& req) {
    auto g1 = Graph::FromEdges(req.g1.num_nodes, req.g1.edges);
    if (!g1.ok()) {
      return ErrorResponse(ResponseCode::kBadRequest,
                           "g1: " + g1.status().ToString());
    }
    auto g2 = Graph::FromEdges(req.g2.num_nodes, req.g2.edges);
    if (!g2.ok()) {
      return ErrorResponse(ResponseCode::kBadRequest,
                           "g2: " + g2.status().ToString());
    }
    if (static_cast<int>(req.mapping.size()) != g1->num_nodes()) {
      return ErrorResponse(ResponseCode::kBadRequest,
                           "mapping size does not match g1's node count");
    }
    for (int32_t v : req.mapping) {
      if (v < -1 || v >= g2->num_nodes()) {
        return ErrorResponse(ResponseCode::kBadRequest,
                             "mapping target out of range: " +
                                 std::to_string(v));
      }
    }
    if (!req.truth.empty() &&
        static_cast<int>(req.truth.size()) != g1->num_nodes()) {
      return ErrorResponse(ResponseCode::kBadRequest,
                           "truth size does not match g1's node count");
    }
    const Alignment mapping = ToAlignment(req.mapping);
    EvaluateResult result;
    result.mnc = MeanMatchedNeighborhoodConsistency(*g1, *g2, mapping);
    result.ec = EdgeCorrectness(*g1, *g2, mapping);
    result.ics = InducedConservedStructure(*g1, *g2, mapping);
    result.s3 = SymmetricSubstructureScore(*g1, *g2, mapping);
    if (!req.truth.empty()) {
      result.has_accuracy = true;
      result.accuracy = Accuracy(mapping, ToAlignment(req.truth));
    }
    Response response;
    response.body = EncodeEvaluateResult(result);
    return response;
  }

  Response HandleStats(const StatsRequest& req) {
    auto g = Graph::FromEdges(req.g.num_nodes, req.g.edges);
    if (!g.ok()) {
      return ErrorResponse(ResponseCode::kBadRequest, g.status().ToString());
    }
    StatsResult result;
    result.num_nodes = g->num_nodes();
    result.num_edges = g->num_edges();
    result.avg_degree = g->AverageDegree();
    result.max_degree = g->MaxDegree();
    int components = 0;
    g->ConnectedComponents(&components);
    result.components = components;
    result.content_hash = g->ContentHash();
    Response response;
    response.body = EncodeStatsResult(result);
    return response;
  }

  static constexpr size_t kMaxTrackedClients = 8192;
  static constexpr size_t kMaxTrackedFaults = 8192;

  const ServerOptions options_;
  ResultCache cache_;
  std::unique_ptr<CacheStore> store_;     // Null without cache_dir.
  CacheStore::ReplayStats replay_stats_;  // Fixed after Start().
  std::unique_ptr<GraphStore> graph_store_;  // Null without store_dir.
  std::atomic<uint64_t> store_unavailable_{0};  // store_dir set but unusable.
  std::unique_ptr<JobManager> jobs_;  // Null without jobs_dir (or unusable).
  std::chrono::steady_clock::time_point start_time_;

  int listen_fd_ = -1;
  int bound_port_ = -1;
  std::string bound_socket_path_;
  int queue_capacity_ = 0;
  int job_gc_ticks_ = 0;  // Watchdog-thread only.

  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};
  mutable std::mutex mu_;
  std::condition_variable queue_cv_;
  std::condition_variable watchdog_cv_;
  std::deque<QueueEntry> queue_;          // Admitted, not yet served.
  std::unordered_set<int> active_fds_;    // Being served by a worker.
  std::vector<std::thread> threads_;      // Workers + watchdog + accept.
  std::deque<WorkerSlot> slots_;          // Fixed after Start().

  std::mutex quota_mu_;
  std::unordered_map<std::string, QuotaBucket> quota_;
  std::mutex fault_mu_;
  std::unordered_map<uint64_t, FaultRecord> faults_;

  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> served_{0};
  std::atomic<uint64_t> busy_rejected_{0};
  std::atomic<uint64_t> quota_rejected_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> quarantined_responses_{0};
  std::atomic<uint64_t> quarantined_signatures_{0};
  std::atomic<uint64_t> watchdog_kills_{0};
  std::atomic<uint64_t> cache_open_errors_{0};
  std::atomic<uint64_t> served_http_{0};
  std::atomic<uint64_t> quota_rejected_http_{0};
  std::atomic<uint64_t> shed_http_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> batch_jobs_{0};
  std::atomic<uint64_t> batch_cache_hits_{0};
  std::atomic<uint64_t> batch_graph_loads_{0};
};

Server::Server(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
Server::~Server() = default;

Result<std::unique_ptr<Server>> Server::Create(const ServerOptions& options) {
  auto impl = std::make_unique<Impl>(options);
  GA_RETURN_IF_ERROR(impl->Bind());
  return std::unique_ptr<Server>(new Server(std::move(impl)));
}

Status Server::Start() { return impl_->Start(); }
void Server::Shutdown() { impl_->Shutdown(); }
void Server::Drain() { impl_->Drain(); }
void Server::Wait() { impl_->Wait(); }
int Server::port() const { return impl_->port(); }
ResultCache::Stats Server::cache_stats() const { return impl_->cache_stats(); }
ServerStatsResult Server::stats() const { return impl_->ServerStats(); }

}  // namespace graphalign
