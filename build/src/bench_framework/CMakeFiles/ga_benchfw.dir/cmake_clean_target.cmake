file(REMOVE_RECURSE
  "libga_benchfw.a"
)
