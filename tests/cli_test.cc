#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cli/cli.h"

namespace graphalign {
namespace {

struct CliResult {
  int exit_code;
  std::string out;
  std::string err;
};

CliResult RunTool(const std::vector<std::string>& args) {
  std::vector<const char*> argv = {"graphalign"};
  for (const std::string& a : args) argv.push_back(a.c_str());
  std::ostringstream out, err;
  int code = RunCli(static_cast<int>(argv.size()), argv.data(), out, err);
  return {code, out.str(), err.str()};
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/cli_" + name;
}

TEST(CliTest, NoArgsPrintsUsage) {
  CliResult r = RunTool({});
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.err.find("usage:"), std::string::npos);
}

TEST(CliTest, UnknownCommandRejected) {
  CliResult r = RunTool({"frobnicate"});
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(CliTest, GenerateRequiresFlags) {
  CliResult r = RunTool({"generate", "--model", "ba"});
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.err.find("requires"), std::string::npos);
}

TEST(CliTest, GenerateUnknownModelFails) {
  CliResult r = RunTool({"generate", "--model", "quantum", "--n", "10", "--out",
                     TempPath("x.txt")});
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.err.find("unknown model"), std::string::npos);
}

TEST(CliTest, GenerateAllModels) {
  for (const std::string& model : {"er", "ba", "ws", "nw", "pl", "geometric"}) {
    const std::string path = TempPath("gen_" + model + ".txt");
    CliResult r = RunTool({"generate", "--model", model, "--n", "50", "--out",
                       path, "--seed", "3"});
    EXPECT_EQ(r.exit_code, 0) << model << ": " << r.err;
    EXPECT_NE(r.out.find("generated"), std::string::npos);
    std::remove(path.c_str());
  }
}

TEST(CliTest, FullPipelineRecoversAlignment) {
  const std::string g1 = TempPath("p_g1.txt");
  const std::string g2 = TempPath("p_g2.txt");
  const std::string truth = TempPath("p_truth.txt");
  const std::string mapping = TempPath("p_map.txt");

  ASSERT_EQ(RunTool({"generate", "--model", "ba", "--n", "80", "--m", "3",
                 "--seed", "5", "--out", g1})
                .exit_code,
            0);
  ASSERT_EQ(RunTool({"perturb", "--in", g1, "--level", "0.02", "--seed", "6",
                 "--out", g2, "--truth", truth})
                .exit_code,
            0);
  CliResult align = RunTool({"align", "--g1", g1, "--g2", g2, "--algo", "GWL",
                         "--assign", "JV", "--out", mapping});
  ASSERT_EQ(align.exit_code, 0) << align.err;
  EXPECT_NE(align.out.find("aligned"), std::string::npos);
  EXPECT_NE(align.out.find("MNC="), std::string::npos);

  CliResult eval = RunTool({"evaluate", "--g1", g1, "--g2", g2, "--mapping",
                        mapping, "--truth", truth});
  ASSERT_EQ(eval.exit_code, 0) << eval.err;
  // GWL at 2% noise on BA(80,3) recovers nearly everything.
  const size_t pos = eval.out.find("accuracy=");
  ASSERT_NE(pos, std::string::npos);
  const double acc = std::atof(eval.out.substr(pos + 9).c_str());
  EXPECT_GE(acc, 0.9) << eval.out;

  for (const std::string& p : {g1, g2, truth, mapping}) std::remove(p.c_str());
}

TEST(CliTest, AlignNativeExtraction) {
  const std::string g1 = TempPath("n_g1.txt");
  const std::string g2 = TempPath("n_g2.txt");
  ASSERT_EQ(RunTool({"generate", "--model", "pl", "--n", "60", "--m", "3",
                 "--seed", "9", "--out", g1})
                .exit_code,
            0);
  ASSERT_EQ(RunTool({"perturb", "--in", g1, "--level", "0.02", "--out", g2})
                .exit_code,
            0);
  CliResult r = RunTool({"align", "--g1", g1, "--g2", g2, "--algo", "REGAL",
                     "--assign", "native"});
  EXPECT_EQ(r.exit_code, 0) << r.err;
  std::remove(g1.c_str());
  std::remove(g2.c_str());
}

TEST(CliTest, AlignRejectsBadInputs) {
  EXPECT_EQ(RunTool({"align", "--g1", "/nonexistent", "--g2", "/nonexistent",
                 "--algo", "GWL"})
                .exit_code,
            1);
  const std::string g1 = TempPath("bad_g1.txt");
  ASSERT_EQ(RunTool({"generate", "--model", "er", "--n", "20", "--p", "0.2",
                 "--out", g1})
                .exit_code,
            0);
  EXPECT_EQ(
      RunTool({"align", "--g1", g1, "--g2", g1, "--algo", "NoSuchAlgo"}).exit_code,
      1);
  EXPECT_EQ(RunTool({"align", "--g1", g1, "--g2", g1, "--algo", "GWL", "--assign",
                 "XX"})
                .exit_code,
            1);
  std::remove(g1.c_str());
}

TEST(CliTest, AlignIsolatedSucceedsUnderGenerousLimits) {
  const std::string g1 = TempPath("iso_g1.txt");
  ASSERT_EQ(RunTool({"generate", "--model", "ba", "--n", "60", "--m", "3",
                 "--seed", "3", "--out", g1})
                .exit_code,
            0);
  // The child's stdout is an in-process ostringstream the fork cannot share,
  // so only the exit code is observable here; 0 means the isolated alignment
  // ran to completion.
  EXPECT_EQ(RunTool({"align", "--g1", g1, "--g2", g1, "--algo", "NSD",
                 "--isolate"})
                .exit_code,
            0);
  EXPECT_EQ(RunTool({"align", "--g1", g1, "--g2", g1, "--algo", "NSD",
                 "--mem-limit", "16384"})
                .exit_code,
            0);
  std::remove(g1.c_str());
}

TEST(CliTest, AlignTinyMemLimitYieldsOomExitCode) {
  const std::string g1 = TempPath("oom_g1.txt");
  ASSERT_EQ(RunTool({"generate", "--model", "ba", "--n", "1500", "--m", "4",
                 "--seed", "3", "--out", g1})
                .exit_code,
            0);
  // An n x n similarity matrix needs ~18 MB; 4 MB of headroom cannot hold
  // it, so the child dies on allocation and the parent reports OOM via the
  // dedicated exit code.
  CliResult r = RunTool({"align", "--g1", g1, "--g2", g1, "--algo", "NSD",
                         "--mem-limit", "4"});
  EXPECT_EQ(r.exit_code, 5) << r.err;
  EXPECT_NE(r.err.find("OOM"), std::string::npos) << r.err;
  std::remove(g1.c_str());
}

TEST(CliTest, AlignRejectsNonPositiveMemLimit) {
  const std::string g1 = TempPath("memflag_g1.txt");
  ASSERT_EQ(RunTool({"generate", "--model", "er", "--n", "20", "--p", "0.2",
                 "--out", g1})
                .exit_code,
            0);
  CliResult r = RunTool({"align", "--g1", g1, "--g2", g1, "--algo", "NSD",
                         "--mem-limit", "0"});
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.err.find("--mem-limit"), std::string::npos);
  std::remove(g1.c_str());
}

TEST(CliTest, PerturbRejectsUnknownNoise) {
  const std::string g1 = TempPath("noise_g1.txt");
  ASSERT_EQ(RunTool({"generate", "--model", "er", "--n", "20", "--p", "0.2",
                 "--out", g1})
                .exit_code,
            0);
  CliResult r =
      RunTool({"perturb", "--in", g1, "--noise", "gamma-ray", "--out", g1});
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.err.find("unknown noise type"), std::string::npos);
  std::remove(g1.c_str());
}

TEST(CliTest, StatsReportsBasics) {
  const std::string g1 = TempPath("stats_g1.txt");
  ASSERT_EQ(RunTool({"generate", "--model", "ba", "--n", "40", "--m", "2",
                 "--seed", "1", "--out", g1})
                .exit_code,
            0);
  CliResult r = RunTool({"stats", "--in", g1});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("n=40"), std::string::npos);
  EXPECT_NE(r.out.find("components="), std::string::npos);
  EXPECT_NE(r.out.find("hash="), std::string::npos);
  std::remove(g1.c_str());
}

TEST(CliTest, StatsHashIsContentAddressed) {
  // The same graph written twice hashes identically; one extra edge (--m 3
  // vs --m 2) changes it.
  const std::string g1 = TempPath("hash_g1.txt");
  const std::string g2 = TempPath("hash_g2.txt");
  const std::string g3 = TempPath("hash_g3.txt");
  ASSERT_EQ(RunTool({"generate", "--model", "ba", "--n", "30", "--m", "2",
                     "--seed", "5", "--out", g1})
                .exit_code,
            0);
  ASSERT_EQ(RunTool({"generate", "--model", "ba", "--n", "30", "--m", "2",
                     "--seed", "5", "--out", g2})
                .exit_code,
            0);
  ASSERT_EQ(RunTool({"generate", "--model", "ba", "--n", "30", "--m", "3",
                     "--seed", "5", "--out", g3})
                .exit_code,
            0);
  auto hash_of = [](const CliResult& r) {
    size_t pos = r.out.find("hash=");
    EXPECT_NE(pos, std::string::npos);
    return r.out.substr(pos, 21);  // "hash=" + 16 hex digits.
  };
  CliResult r1 = RunTool({"stats", "--in", g1});
  CliResult r2 = RunTool({"stats", "--in", g2});
  CliResult r3 = RunTool({"stats", "--in", g3});
  EXPECT_EQ(hash_of(r1), hash_of(r2));
  EXPECT_NE(hash_of(r1), hash_of(r3));
  std::remove(g1.c_str());
  std::remove(g2.c_str());
  std::remove(g3.c_str());
}

TEST(CliTest, ThreadsFlagRejectsJunk) {
  const std::string g1 = TempPath("thr_g1.txt");
  ASSERT_EQ(RunTool({"generate", "--model", "er", "--n", "20", "--p", "0.2",
                     "--seed", "1", "--out", g1})
                .exit_code,
            0);
  for (const std::string bad : {"0", "-2", "4x", "x", "", "1.5", "2000"}) {
    CliResult r = RunTool({"align", "--g1", g1, "--g2", g1, "--algo", "NSD",
                           "--threads", bad});
    EXPECT_EQ(r.exit_code, 1) << "'" << bad << "'";
    EXPECT_NE(r.err.find("--threads"), std::string::npos) << "'" << bad << "'";
  }
  std::remove(g1.c_str());
}

TEST(CliTest, ThreadsFlagAcceptsPositiveCount) {
  const std::string g1 = TempPath("thr_ok_g1.txt");
  ASSERT_EQ(RunTool({"generate", "--model", "er", "--n", "20", "--p", "0.2",
                     "--seed", "1", "--out", g1})
                .exit_code,
            0);
  CliResult r = RunTool({"align", "--g1", g1, "--g2", g1, "--algo", "NSD",
                         "--threads", "2"});
  EXPECT_EQ(r.exit_code, 0) << r.err;
  std::remove(g1.c_str());
}

TEST(CliTest, EvaluateWithoutTruthGivesStructuralScoresOnly) {
  const std::string g1 = TempPath("e_g1.txt");
  const std::string mapping = TempPath("e_map.txt");
  ASSERT_EQ(RunTool({"generate", "--model", "ws", "--n", "30", "--k", "4",
                 "--seed", "2", "--out", g1})
                .exit_code,
            0);
  {
    std::ofstream f(mapping);
    for (int i = 0; i < 30; ++i) f << i << " " << i << "\n";
  }
  CliResult r = RunTool({"evaluate", "--g1", g1, "--g2", g1, "--mapping", mapping});
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("EC=1.000"), std::string::npos);
  EXPECT_EQ(r.out.find("accuracy"), std::string::npos);
  std::remove(g1.c_str());
  std::remove(mapping.c_str());
}

}  // namespace
}  // namespace graphalign
