#include "gateway/http.h"

#include <algorithm>
#include <cctype>

namespace graphalign {

namespace {

std::string_view TrimOws(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool IsTokenChar(unsigned char c) {
  // RFC 7230 token characters; enough to reject header-name smuggling.
  if (std::isalnum(c)) return true;
  switch (c) {
    case '!': case '#': case '$': case '%': case '&': case '\'': case '*':
    case '+': case '-': case '.': case '^': case '_': case '`': case '|':
    case '~':
      return true;
    default:
      return false;
  }
}

// Strict decimal parse for Content-Length: digits only, no sign, no
// whitespace beyond the already-trimmed OWS, overflow-checked.
bool ParseContentLength(std::string_view s, uint64_t* out) {
  if (s.empty() || s.size() > 19) return false;
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

}  // namespace

std::string_view HttpRequest::Header(std::string_view name) const {
  for (const auto& [k, v] : headers) {
    if (k == name) return v;
  }
  return {};
}

bool HttpRequest::KeepAlive() const {
  const std::string conn = ToLower(Header("connection"));
  if (conn.find("close") != std::string::npos) return false;
  if (version == "HTTP/1.1") return true;
  return conn.find("keep-alive") != std::string::npos;
}

const char* HttpParseStatusName(HttpParseStatus status) {
  switch (status) {
    case HttpParseStatus::kComplete: return "COMPLETE";
    case HttpParseStatus::kIncomplete: return "INCOMPLETE";
    case HttpParseStatus::kBad: return "BAD";
    case HttpParseStatus::kTooLarge: return "TOO_LARGE";
    case HttpParseStatus::kBodyTooLarge: return "BODY_TOO_LARGE";
    case HttpParseStatus::kUnsupported: return "UNSUPPORTED";
  }
  return "UNKNOWN";
}

HttpParseStatus ParseHttpRequest(std::string_view buf,
                                 const HttpLimits& limits,
                                 HttpRequest* request, size_t* consumed,
                                 std::string* error) {
  auto fail = [&](HttpParseStatus status, const char* what) {
    if (error != nullptr) *error = what;
    return status;
  };
  // Locate the end of the head. The cap applies to the *search*, so a
  // drip-fed or endless header section is rejected as soon as the cap is
  // crossed, not buffered forever.
  const size_t head_end = buf.find("\r\n\r\n");
  if (head_end == std::string_view::npos) {
    if (buf.size() > limits.max_head_bytes) {
      return fail(HttpParseStatus::kTooLarge,
                  "request head exceeds the size cap");
    }
    return HttpParseStatus::kIncomplete;
  }
  if (head_end + 4 > limits.max_head_bytes) {
    return fail(HttpParseStatus::kTooLarge,
                "request head exceeds the size cap");
  }
  const std::string_view head = buf.substr(0, head_end);

  // Request line: METHOD SP TARGET SP VERSION.
  const size_t line_end = head.find("\r\n");
  const std::string_view request_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  const size_t sp1 = request_line.find(' ');
  const size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      request_line.find(' ', sp2 + 1) != std::string_view::npos) {
    return fail(HttpParseStatus::kBad, "malformed request line");
  }
  const std::string_view method = request_line.substr(0, sp1);
  const std::string_view target =
      request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = request_line.substr(sp2 + 1);
  if (method.empty() || target.empty()) {
    return fail(HttpParseStatus::kBad, "malformed request line");
  }
  for (unsigned char c : method) {
    if (!IsTokenChar(c)) {
      return fail(HttpParseStatus::kBad, "bad method token");
    }
  }
  // Origin-form targets only; anything else (absolute URIs, CONNECT
  // authority, "*") is outside the gateway's routing.
  if (target[0] != '/') {
    return fail(HttpParseStatus::kBad, "target is not origin-form");
  }
  for (unsigned char c : target) {
    if (c <= 0x20 || c == 0x7f) {
      return fail(HttpParseStatus::kBad, "control byte in target");
    }
  }
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    return fail(HttpParseStatus::kBad, "unsupported HTTP version");
  }

  HttpRequest parsed;
  parsed.method = std::string(method);
  parsed.target = std::string(target);
  parsed.version = std::string(version);

  // Headers.
  size_t pos = line_end == std::string_view::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    size_t eol = head.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = head.size();
    const std::string_view line = head.substr(pos, eol - pos);
    pos = eol + 2;
    if (parsed.headers.size() >= limits.max_headers) {
      return fail(HttpParseStatus::kTooLarge, "too many headers");
    }
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return fail(HttpParseStatus::kBad, "malformed header line");
    }
    const std::string_view name = line.substr(0, colon);
    for (unsigned char c : name) {
      // A space before the colon is the classic request-smuggling shape;
      // reject rather than normalize.
      if (!IsTokenChar(c)) {
        return fail(HttpParseStatus::kBad, "bad header name");
      }
    }
    parsed.headers.emplace_back(ToLower(name),
                                std::string(TrimOws(line.substr(colon + 1))));
  }

  if (!parsed.Header("transfer-encoding").empty()) {
    return fail(HttpParseStatus::kUnsupported,
                "Transfer-Encoding is not supported; send a Content-Length "
                "body");
  }

  // Body framing: absent Content-Length means no body.
  uint64_t content_length = 0;
  bool have_length = false;
  for (const auto& [k, v] : parsed.headers) {
    if (k != "content-length") continue;
    uint64_t parsed_len = 0;
    if (!ParseContentLength(v, &parsed_len)) {
      return fail(HttpParseStatus::kBad, "malformed Content-Length");
    }
    if (have_length && parsed_len != content_length) {
      return fail(HttpParseStatus::kBad, "conflicting Content-Length");
    }
    content_length = parsed_len;
    have_length = true;
  }
  if (content_length > limits.max_body_bytes) {
    return fail(HttpParseStatus::kBodyTooLarge,
                "Content-Length exceeds the body cap");
  }
  const size_t body_start = head_end + 4;
  if (buf.size() - body_start < content_length) {
    return HttpParseStatus::kIncomplete;
  }
  parsed.body = std::string(buf.substr(body_start, content_length));
  *request = std::move(parsed);
  *consumed = body_start + content_length;
  return HttpParseStatus::kComplete;
}

const char* HttpStatusReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 207: return "Multi-Status";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

std::string EncodeHttpResponse(
    int status, std::string_view content_type, std::string_view body,
    bool keep_alive,
    const std::vector<std::pair<std::string, std::string>>& extra_headers) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
                    HttpStatusReason(status) + "\r\n";
  out += "Content-Type: " + std::string(content_type) + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  if (!keep_alive) out += "Connection: close\r\n";
  for (const auto& [name, value] : extra_headers) {
    out += name + ": " + value + "\r\n";
  }
  out += "\r\n";
  out += body;
  return out;
}

}  // namespace graphalign
