# Empty compiler generated dependencies file for ga_noise.
# This may be replaced when dependencies are built.
