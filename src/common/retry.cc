#include "common/retry.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

namespace graphalign {

namespace {

// SplitMix64: the canonical 64-bit mix, used as a stateless hash so delay k
// depends only on (seed, k), not on how many Backoff objects exist.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

bool IsTransient(StatusCode code) {
  return code == StatusCode::kUnavailable ||
         code == StatusCode::kResourceExhausted;
}

bool IsTransient(const Status& status) { return IsTransient(status.code()); }

double Backoff::NextDelayMs() {
  const int k = attempt_++;
  double base = policy_.initial_backoff_ms;
  for (int i = 0; i < k; ++i) {
    base *= policy_.backoff_multiplier;
    if (base >= policy_.max_backoff_ms) break;  // Saturated; stop multiplying.
  }
  base = std::min(base, policy_.max_backoff_ms);
  const uint64_t bits = Mix64(policy_.jitter_seed ^ static_cast<uint64_t>(k));
  const double u = static_cast<double>(bits >> 11) * 0x1.0p-53;  // [0, 1).
  return base * (0.5 + 0.5 * u);
}

void SleepForMs(double ms) {
  if (ms <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

Status RetryStatus(
    const RetryPolicy& policy, const std::function<Status()>& fn,
    const std::function<void(int, const Status&, double)>& on_retry) {
  Backoff backoff(policy);
  const int attempts = std::max(1, policy.max_attempts);
  Status last = Status::Internal("RetryStatus: no attempt ran");
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    last = fn();
    if (last.ok() || !IsTransient(last)) return last;
    if (attempt == attempts) break;
    const double delay = backoff.NextDelayMs();
    if (on_retry) on_retry(attempt, last, delay);
    SleepForMs(delay);
  }
  return last;
}

}  // namespace graphalign
