# Empty dependencies file for bench_fig13_mem_nodes.
# This may be replaced when dependencies are built.
