file(REMOVE_RECURSE
  "CMakeFiles/ga_noise.dir/noise.cc.o"
  "CMakeFiles/ga_noise.dir/noise.cc.o.d"
  "libga_noise.a"
  "libga_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ga_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
