file(REMOVE_RECURSE
  "CMakeFiles/ga_linalg.dir/csr.cc.o"
  "CMakeFiles/ga_linalg.dir/csr.cc.o.d"
  "CMakeFiles/ga_linalg.dir/dense.cc.o"
  "CMakeFiles/ga_linalg.dir/dense.cc.o.d"
  "CMakeFiles/ga_linalg.dir/eigen_sym.cc.o"
  "CMakeFiles/ga_linalg.dir/eigen_sym.cc.o.d"
  "CMakeFiles/ga_linalg.dir/kdtree.cc.o"
  "CMakeFiles/ga_linalg.dir/kdtree.cc.o.d"
  "CMakeFiles/ga_linalg.dir/sinkhorn.cc.o"
  "CMakeFiles/ga_linalg.dir/sinkhorn.cc.o.d"
  "CMakeFiles/ga_linalg.dir/svd.cc.o"
  "CMakeFiles/ga_linalg.dir/svd.cc.o.d"
  "libga_linalg.a"
  "libga_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ga_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
