#include "linalg/minhash.h"

#include <limits>

namespace graphalign {

MinHasher::MinHasher(int num_hashes, uint64_t seed) {
  seeds_.reserve(num_hashes > 0 ? num_hashes : 0);
  uint64_t state = seed;
  for (int k = 0; k < num_hashes; ++k) {
    // SplitMix64 stream: consecutive, well-decorrelated per-function seeds.
    state = Mix64(state + 0x9E3779B97F4A7C15ULL);
    seeds_.push_back(state);
  }
}

void MinHasher::Signature(std::span<const uint64_t> tokens,
                          uint64_t* out) const {
  for (size_t k = 0; k < seeds_.size(); ++k) {
    const uint64_t seed = seeds_[k];
    // The sentinel stands in only for a genuinely empty set; letting it join
    // the min for non-empty sets would make disjoint sets collide whenever
    // all their hashes land above it, inflating every Jaccard estimate.
    uint64_t best = tokens.empty() ? Mix64(seed)
                                   : std::numeric_limits<uint64_t>::max();
    for (const uint64_t t : tokens) {
      const uint64_t h = Mix64(t ^ seed);
      if (h < best) best = h;
    }
    out[k] = best;
  }
}

uint64_t BandKey(const uint64_t* sig, int rows, uint64_t band_seed) {
  // FNV-1a-style fold over the band's rows, then a final mix; the position
  // dependence keeps permuted bands distinct.
  uint64_t h = band_seed ^ 0xCBF29CE484222325ULL;
  for (int r = 0; r < rows; ++r) {
    h ^= sig[r];
    h *= 0x100000001B3ULL;
  }
  return Mix64(h);
}

}  // namespace graphalign
