#include <iostream>

#include "cli/cli.h"

int main(int argc, char** argv) {
  return graphalign::RunCli(argc, argv, std::cout, std::cerr);
}
