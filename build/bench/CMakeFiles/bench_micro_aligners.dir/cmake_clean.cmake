file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_aligners.dir/bench_micro_aligners.cc.o"
  "CMakeFiles/bench_micro_aligners.dir/bench_micro_aligners.cc.o.d"
  "bench_micro_aligners"
  "bench_micro_aligners.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_aligners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
