// Figure 3: Accuracy, S3, and MNC on Barabasi-Albert scale-free graphs
// (m = 5), three noise types, noise up to 5% (paper §6.3).
#include "figure_synthetic.h"
#include "graph/generators.h"

int main(int argc, char** argv) {
  return graphalign::bench::RunSyntheticFigure(
      "Figure 3", "Barabasi-Albert",
      [](int n, graphalign::Rng* rng) {
        return graphalign::BarabasiAlbert(n, 5, rng);
      },
      argc, argv);
}
