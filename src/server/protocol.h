// Wire protocol of the alignment service daemon (DESIGN.md §11).
//
// Transport: a stream socket (Unix or TCP) carrying length-prefixed binary
// frames. Each frame is
//
//   "GAF1" (4-byte magic) | u32 payload length (LE) | payload bytes
//
// and each payload is one request or one response, encoded with the
// bounds-checked ByteWriter/ByteReader below. The parser is total: any
// sequence of bytes — truncated, oversized, zero-length, garbage — yields a
// typed outcome, never a crash, an allocation blow-up, or a hang (the frame
// length is validated against kMaxFramePayload before anything is
// buffered).
//
// Requests carry graphs inline as edge lists, so the daemon needs no
// filesystem access and the content-addressed result cache can key directly
// on what arrived. All integers are little-endian; the protocol is
// host-endianness-symmetric in practice (every supported target is LE) and
// version-gated by kProtocolVersion for everything else.
#ifndef GRAPHALIGN_SERVER_PROTOCOL_H_
#define GRAPHALIGN_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/exit_codes.h"
#include "common/status.h"
#include "common/wire.h"
#include "graph/graph.h"

namespace graphalign {

// Version 2 added the top-level `client` identity field on every request
// (admission quotas key on it) and the SHED/QUARANTINED response codes plus
// the kServerStats request. Version 3 added the graph store surface:
// kPutGraph/kHasGraph, align-by-hash (AlignRequest.by_hash + g1_hash/
// g2_hash), the NO_GRAPH response code, and the store_* counters in
// kServerStats. Version 4 added the top-level `transport` tag (GAF1 vs the
// HTTP gateway, for per-transport serving counters), kAlignBatch with the
// PARTIAL response code, and the batch/transport counters in kServerStats.
// Version 5 added the durable async job surface: kSubmitJob/kJobStatus/
// kJobResult/kCancelJob with the ACCEPTED/NO_JOB/CONFLICT response codes,
// Response.retry_after_ms (server-provided backoff hint on BUSY/SHED/
// SHUTTING_DOWN), and the jobs_* counters in kServerStats.
// Peers speaking a different version are rejected with a typed BAD_REQUEST
// naming the version.
inline constexpr uint32_t kProtocolVersion = 5;

// Frames beyond this payload size are rejected before buffering (a 64 MB
// frame holds an ~4M-edge graph pair; bigger graphs belong in the offline
// sweep harness, not a serving request).
inline constexpr uint32_t kMaxFramePayload = 64u << 20;

inline constexpr char kFrameMagic[4] = {'G', 'A', 'F', '1'};
inline constexpr size_t kFrameHeaderBytes = sizeof(kFrameMagic) + sizeof(uint32_t);

// Cap on short identifier strings in requests (algorithm names, assignment
// methods, client identities). Shared with the CLI so it can reject an
// over-long --client before the daemon does.
inline constexpr size_t kMaxNameLen = 64;

// ---------------------------------------------------------------------------
// Framing.

enum class FrameStatus {
  kComplete,    // One whole frame parsed; *consumed bytes were used.
  kIncomplete,  // Prefix of a valid frame; read more bytes and retry.
  kBadMagic,    // The first bytes are not a frame; the stream is garbage.
  kOversized,   // Declared length exceeds kMaxFramePayload.
  kEmpty,       // Zero-length payload (no valid message is empty).
};

const char* FrameStatusName(FrameStatus status);

// Attempts to parse one frame from the front of `buf`. On kComplete,
// *payload receives the payload bytes and *consumed the total frame size.
// Never reads past buf, never allocates more than the declared (validated)
// payload length.
FrameStatus TryParseFrame(std::string_view buf, std::string* payload,
                          size_t* consumed);

// Wraps `payload` in a frame header. Payload must fit kMaxFramePayload.
std::string EncodeFrame(std::string_view payload);

// Blocking frame IO over a socket fd (SIGPIPE-safe; uses send/recv).
// ReadFrameFromFd returns true with a frame, false on a clean peer close
// before any byte, and a Status on truncation, bad magic, oversized or
// empty frames, timeouts (DeadlineExceeded when the socket has a receive
// timeout), and IO errors.
Result<bool> ReadFrameFromFd(int fd, std::string* payload);
Status WriteFrameToFd(int fd, std::string_view payload);

// Payload (de)serialization uses the shared bounds-checked ByteWriter/
// ByteReader (common/wire.h), the same primitives behind the cache log and
// the job journal.

// ---------------------------------------------------------------------------
// Requests.

enum class RequestType : uint8_t {
  kPing = 1,
  kAlign = 2,
  kEvaluate = 3,
  kStats = 4,
  kCacheInfo = 5,
  kShutdown = 6,
  kServerStats = 7,
  kPutGraph = 8,   // Upload a graph into the daemon's mapped store.
  kHasGraph = 9,   // Probe whether the store holds a content hash.
  kAlignBatch = 10,  // K align jobs over a shared graph table (one frame).
  kSubmitJob = 11,   // Enqueue an align as a durable async job (DESIGN §17).
  kJobStatus = 12,   // Poll a job's state/attempt counters by job id.
  kJobResult = 13,   // Fetch a DONE job's AlignResult (ACCEPTED until then).
  kCancelJob = 14,   // Cancel a job that has not finished yet.
};

// Transport over which a request reached the daemon. The HTTP gateway tags
// the GAF1 calls it forwards so kServerStats can attribute served/quota/
// shed counts per transport; direct GAF1 clients leave the default. The
// tag is advisory (a raw client can claim kHttp) — it skews stats only,
// never admission or execution.
enum class Transport : uint8_t {
  kGaf1 = 0,
  kHttp = 1,
};

// A graph shipped inline: node count plus canonical-orientation edges.
struct WireGraph {
  int num_nodes = 0;
  std::vector<Edge> edges;
};

WireGraph ToWire(const Graph& g);

struct AlignRequest {
  std::string algo;          // Aligner name, or a _CRASH/_OOM/_HANG fault.
  std::string assign = "JV"; // NN | SG | MWM | JV | native.
  uint64_t deadline_ms = 0;  // 0 = no cooperative deadline.
  uint64_t mem_limit_mb = 0; // 0 = no memory cap on the isolated child.
  bool no_cache = false;     // Bypass (and do not populate) the cache.
  // Submit-by-hash: when set, g1/g2 are empty on the wire and the daemon
  // resolves g1_hash/g2_hash against its mapped store (uploaded earlier via
  // kPutGraph). An unknown or quarantined hash answers NO_GRAPH.
  bool by_hash = false;
  uint64_t g1_hash = 0, g2_hash = 0;
  WireGraph g1, g2;
};

struct PutGraphRequest {
  WireGraph g;
};

// Caps on batch shape, enforced by the decoder before any job runs. A batch
// amortizes graph resolution and admission, not compute: 256 jobs over 64
// graphs is already far past what one worker should serialize.
inline constexpr size_t kMaxBatchGraphs = 64;
inline constexpr size_t kMaxBatchJobs = 256;

// One entry of the batch graph table: either a store hash or an inline
// edge list (exactly one; by_hash entries carry an empty inline graph).
struct BatchGraphRef {
  bool by_hash = false;
  uint64_t hash = 0;   // Valid when by_hash.
  WireGraph inline_graph;  // Valid when !by_hash.
};

// One alignment job of a batch; g1/g2 index into the shared graph table.
struct BatchJob {
  uint32_t g1 = 0, g2 = 0;
  std::string algo;
  std::string assign = "JV";
  uint64_t deadline_ms = 0;
  uint64_t mem_limit_mb = 0;
  bool no_cache = false;
};

// kAlignBatch: K jobs over a shared graph table. Each referenced graph is
// resolved (store open / inline construction) at most once per batch, and
// the whole batch pays one admission + quota decision.
struct AlignBatchRequest {
  std::vector<BatchGraphRef> graphs;
  std::vector<BatchJob> jobs;
};

struct HasGraphRequest {
  uint64_t hash = 0;
};

// kSubmitJob: the align spec to run asynchronously, plus an optional client
// idempotency key (<= kMaxNameLen). The daemon derives the job id from the
// spec content, so resubmitting the same work — by key or byte-identical
// spec — returns the existing job instead of executing twice.
struct SubmitJobRequest {
  AlignRequest align;
  std::string idem_key;
};

// kJobStatus / kJobResult / kCancelJob: the job id as printed by submit
// (16 lowercase hex digits).
struct JobIdRequest {
  uint64_t job_id = 0;
};

struct EvaluateRequest {
  WireGraph g1, g2;
  std::vector<int32_t> mapping;  // mapping[u] = node of g2, -1 unmatched.
  std::vector<int32_t> truth;    // Optional ground truth; empty = none.
};

struct StatsRequest {
  WireGraph g;
};

struct Request {
  RequestType type = RequestType::kPing;
  // Client identity for per-client admission quotas (--quota). Free-form,
  // at most 64 bytes; empty means the shared "anon" bucket. Carried on
  // every request type so quota accounting never depends on the payload.
  std::string client;
  // Which transport delivered this request (set by the HTTP gateway on
  // forwarded calls; stats attribution only).
  Transport transport = Transport::kGaf1;
  AlignRequest align;        // Valid when type == kAlign.
  EvaluateRequest evaluate;  // Valid when type == kEvaluate.
  StatsRequest stats;        // Valid when type == kStats.
  PutGraphRequest put_graph; // Valid when type == kPutGraph.
  HasGraphRequest has_graph; // Valid when type == kHasGraph.
  AlignBatchRequest align_batch;  // Valid when type == kAlignBatch.
  SubmitJobRequest submit_job;    // Valid when type == kSubmitJob.
  JobIdRequest job_id;   // Valid for kJobStatus/kJobResult/kCancelJob.
};

std::string EncodeRequest(const Request& request);
// Total decode: malformed payloads yield InvalidArgument naming what broke.
Result<Request> DecodeRequest(std::string_view payload);

// ---------------------------------------------------------------------------
// Responses.

// DNF/CRASH/OOM deliberately share numeric values with the process exit
// codes (common/exit_codes.h): `graphalign submit` exits with the response
// code and the meaning is identical to a local `graphalign align --isolate`.
enum class ResponseCode : uint8_t {
  kOk = kExitOk,
  kError = kExitError,             // In-request error (bad algo, IO, ...).
  kBadRequest = kExitUsage,        // Protocol/decoding violation.
  kDnf = kExitDnf,                 // Deadline exceeded.
  kCrash = kExitCrash,             // The isolated alignment crashed.
  kOom = kExitOom,                 // The isolated alignment exceeded memory.
  kBusy = kExitBusy,               // Admission control refused the request.
  kNumerical = kExitNumerical,     // Recoverable numerics; no fallback left.
  kShuttingDown = kExitShuttingDown,  // Draining; retry against a live peer.
  kShed = kExitShed,               // Queue wait consumed the deadline; the
                                   // request was shed unserved (transient).
  kQuarantined = kExitQuarantined,  // The request signature is quarantined
                                    // after repeated CRASH/OOM (permanent).
  kNoGraph = kExitNoGraph,  // A submit-by-hash named a graph the store does
                            // not hold (never held, or its copy failed
                            // verification and was quarantined). Permanent
                            // until the client re-uploads: not retried.
  kPartial = kExitPartial,  // A batch finished with mixed per-job outcomes;
                            // the body carries each job's typed code. Never
                            // retried as a whole (re-submit the failed jobs).
  kAccepted = kExitAccepted,  // An async job was accepted (or deduplicated
                              // onto an existing one) and has not finished:
                              // the body is a JobInfo, not a result. Poll
                              // kJobStatus/kJobResult for completion.
  kNoJob = kExitNoJob,        // kJobStatus/kJobResult/kCancelJob named a job
                              // id the daemon does not hold (never submitted,
                              // or already GC'd past its TTL).
  kConflict = kExitConflict,  // The request conflicts with the job's current
                              // state: cancelling a finished job, or reusing
                              // an idempotency key for different content.
};

const char* ResponseCodeName(ResponseCode code);

struct Response {
  ResponseCode code = ResponseCode::kOk;
  bool cache_hit = false;
  uint64_t elapsed_us = 0;  // Server-side handling time for this request.
  // Server-provided backoff hint in milliseconds, set on transient
  // rejections (BUSY/SHED/SHUTTING_DOWN): the client should wait this long
  // before retrying instead of guessing with its own jitter schedule. 0 =
  // no hint (non-transient codes, or an older peer).
  uint64_t retry_after_ms = 0;
  std::string message;      // Error detail / human-readable note.
  std::string body;         // Type-specific encoded result (below).
};

std::string EncodeResponse(const Response& response);
Result<Response> DecodeResponse(std::string_view payload);

// Body of a successful kAlign response (also the cached value).
struct AlignResult {
  std::vector<int32_t> mapping;
  double mnc = 0.0, ec = 0.0, s3 = 0.0;
  double align_seconds = 0.0;  // Compute time inside the isolated child.
  bool degraded = false;       // Produced via a numerical fallback.
  std::string degrade_reason;  // Empty unless degraded.
};

std::string EncodeAlignResult(const AlignResult& result);
Result<AlignResult> DecodeAlignResult(std::string_view body);

// One job's outcome inside a kAlignBatch response body. `body` holds an
// encoded AlignResult when code == kOk, else it is empty and `message`
// names what went wrong — the same pair a standalone kAlign would return.
struct BatchJobOutcome {
  ResponseCode code = ResponseCode::kOk;
  bool cache_hit = false;
  std::string message;
  std::string body;
};

// Body of a kAlignBatch response (codes kOk, kPartial, or any shared
// failure code; the per-job detail is always present). graph_loads counts
// the distinct graph-table entries actually resolved — the amortization
// the batch exists for (K jobs over 2 store graphs load 2, not 2K).
struct AlignBatchResult {
  uint32_t graph_loads = 0;
  std::vector<BatchJobOutcome> jobs;
};

std::string EncodeAlignBatchResult(const AlignBatchResult& result);
Result<AlignBatchResult> DecodeAlignBatchResult(std::string_view body);

// Body of a successful kEvaluate response.
struct EvaluateResult {
  double mnc = 0.0, ec = 0.0, ics = 0.0, s3 = 0.0;
  bool has_accuracy = false;
  double accuracy = 0.0;
};

std::string EncodeEvaluateResult(const EvaluateResult& result);
Result<EvaluateResult> DecodeEvaluateResult(std::string_view body);

// Body of a successful kStats response.
struct StatsResult {
  int32_t num_nodes = 0;
  int64_t num_edges = 0;
  double avg_degree = 0.0;
  int32_t max_degree = 0;
  int32_t components = 0;
  uint64_t content_hash = 0;
};

std::string EncodeStatsResult(const StatsResult& result);
Result<StatsResult> DecodeStatsResult(std::string_view body);

// Body of a successful kPutGraph response.
struct PutGraphResult {
  uint64_t content_hash = 0;
  bool already_present = false;  // Deduplicated: the store had this graph.
};

std::string EncodePutGraphResult(const PutGraphResult& result);
Result<PutGraphResult> DecodePutGraphResult(std::string_view body);

// Body of a successful kHasGraph response.
struct HasGraphResult {
  bool present = false;
};

std::string EncodeHasGraphResult(const HasGraphResult& result);
Result<HasGraphResult> DecodeHasGraphResult(std::string_view body);

// Body of a kSubmitJob / kJobStatus / kCancelJob response (and of a
// kJobResult answered kAccepted, i.e. polled before completion). Mirrors
// jobs/manager.h's JobRecord without the spec/result payloads.
struct JobInfo {
  uint64_t job_id = 0;
  uint32_t state = 0;         // jobs/manager.h JobState numeric value.
  std::string state_name;     // ACCEPTED/RUNNING/DONE/FAILED/...
  uint32_t attempts = 0;      // Executions started (including recoveries).
  uint32_t max_attempts = 0;
  uint64_t submitted_unix_ms = 0;
  uint64_t updated_unix_ms = 0;
  uint32_t terminal_code = 0;  // ResponseCode of the terminal outcome
                               // (kOk for DONE); meaningless until terminal.
  std::string message;         // Failure/cancel detail; empty otherwise.
  bool existing = false;       // Submit was deduplicated onto a prior job.
};

std::string EncodeJobInfo(const JobInfo& info);
Result<JobInfo> DecodeJobInfo(std::string_view body);

// Canonical byte encoding of an AlignRequest on its own — the durable job
// spec. The job id is content-derived from exactly these bytes, and the
// journal replays them to re-enqueue work after a crash, so this encoding
// must stay stable across daemon versions that share a journal.
std::string EncodeAlignSpec(const AlignRequest& align);
Result<AlignRequest> DecodeAlignSpec(std::string_view spec);

// Body of a successful kCacheInfo response.
struct CacheInfoResult {
  uint64_t hits = 0, misses = 0, evictions = 0;
  uint64_t entries = 0, bytes = 0, capacity_bytes = 0;
};

std::string EncodeCacheInfoResult(const CacheInfoResult& result);
Result<CacheInfoResult> DecodeCacheInfoResult(std::string_view body);

// Body of a successful kServerStats response: the daemon's admission,
// quarantine, watchdog, and durable-cache counters since startup.
struct ServerStatsResult {
  uint64_t workers = 0;
  double uptime_seconds = 0.0;
  uint64_t accepted = 0;         // Connections admitted to the queue.
  uint64_t served = 0;           // Requests answered (any code).
  uint64_t busy_rejected = 0;    // Typed BUSY: admission queue full.
  uint64_t quota_rejected = 0;   // Typed BUSY: per-client quota exceeded.
  uint64_t shed = 0;             // Typed SHED: queue wait ate the deadline.
  uint64_t quarantined = 0;      // Typed QUARANTINED responses.
  uint64_t quarantined_signatures = 0;  // Signatures currently quarantined.
  uint64_t watchdog_kills = 0;   // Hung children SIGKILLed past grace.
  uint64_t queue_depth = 0;      // Connections waiting right now.
  uint64_t in_flight = 0;        // Requests being served right now.
  uint64_t cache_replayed = 0;        // Records restored from the cache log.
  uint64_t cache_crc_skipped = 0;     // Records skipped on CRC mismatch.
  uint64_t cache_truncated_bytes = 0; // Torn tail bytes dropped at replay.
  uint64_t cache_append_errors = 0;   // Failed log appends (cache stays hot).
  uint64_t cache_open_errors = 0;     // Log open/replay failures (cold start).
  uint64_t store_puts = 0;        // kPutGraph uploads accepted.
  uint64_t store_gets = 0;        // Store lookups by align-by-hash.
  uint64_t store_corrupt = 0;     // Entries quarantined after failing verify.
  uint64_t store_missing = 0;     // By-hash lookups that found no entry.
  uint64_t store_unavailable = 0; // 1 when --store-dir was given but could
                                  // not be opened (wire-graph path only).
  uint64_t served_http = 0;         // Served requests tagged Transport::kHttp.
  uint64_t quota_rejected_http = 0; // Quota rejections on HTTP-tagged calls.
  uint64_t shed_http = 0;           // Sheds on HTTP-tagged align calls.
  uint64_t batches = 0;             // kAlignBatch requests served.
  uint64_t batch_jobs = 0;          // Jobs carried by those batches.
  uint64_t batch_cache_hits = 0;    // Batch jobs answered from the cache.
  uint64_t batch_graph_loads = 0;   // Graph-table resolutions (amortized).
  uint64_t jobs_submitted = 0;      // kSubmitJob requests that created a job.
  uint64_t jobs_deduped = 0;        // Submits answered with an existing job.
  uint64_t jobs_done = 0;           // Jobs that reached DONE.
  uint64_t jobs_failed = 0;         // Jobs that reached FAILED/QUARANTINED.
  uint64_t jobs_cancelled = 0;      // Jobs cancelled before completion.
  uint64_t jobs_executions = 0;     // Execution attempts started (retries
                                    // and crash recoveries included).
  uint64_t jobs_recovered = 0;      // RUNNING jobs re-enqueued at replay.
  uint64_t jobs_pending = 0;        // Jobs queued or running right now.
  std::vector<uint64_t> worker_restarts;  // Watchdog kills per worker slot.
};

std::string EncodeServerStatsResult(const ServerStatsResult& result);
Result<ServerStatsResult> DecodeServerStatsResult(std::string_view body);

}  // namespace graphalign

#endif  // GRAPHALIGN_SERVER_PROTOCOL_H_
