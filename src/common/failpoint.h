// Deterministic fault-injection framework (RocksDB SyncPoint/FailPoint
// idiom, DESIGN.md §12).
//
// A *failpoint* is a named injection site compiled into production code.
// When the site is inactive — the normal case — hitting it costs a single
// relaxed atomic load (plus the function-local static guard the first time a
// thread reaches the site); no lock, no string work, no clock. When armed,
// the site fires a configured fault: a typed error Status, a NaN poison, a
// delay, a crash signal, or an unbounded allocation. This is what lets the
// chaos suite prove that every recovery path the system claims to have —
// deadline DNFs, crash containment, retry/backoff, numerical degradation —
// actually engages.
//
// Activation:
//   * environment: GRAPHALIGN_FAILPOINTS="site=mode[:arg][;site2=mode...]"
//     parsed once, on first registry use (so forked children and exec'd
//     tools inherit the faults of their parent shell), or
//   * programmatic: ActivateFailpoint("linalg.eigen.no-converge", "error").
//
// Modes (the `arg` grammar is mode-specific):
//   error        fire the site's natural error Status on every hit
//   once         like error, but fire exactly once, then disarm
//   prob:P       like error, with probability P per hit; the per-site RNG is
//                seeded from the site name and GRAPHALIGN_FAILPOINT_SEED, so
//                a given seed reproduces the exact same fault sequence
//   nan          poison the site's value with a quiet NaN (sites that carry
//                no value treat this as `error`)
//   delay-ms:N   sleep N milliseconds at the site, then continue normally
//   crash        raise SIGSEGV at the site (use only under isolation)
//   oom          allocate-and-touch until the memory limit kills the process
//                (use only under isolation)
//
// Sites fire their *natural* failure: the eigensolver site injects the same
// "QL iteration did not converge" kNumerical status a real non-convergence
// produces, so everything downstream exercises the genuine recovery path,
// not a test-only one. The canonical site list lives in KnownFailpoints()
// and is documented in DESIGN.md §12.
#ifndef GRAPHALIGN_COMMON_FAILPOINT_H_
#define GRAPHALIGN_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace graphalign {

class Failpoint {
 public:
  // Returns the failpoint registered under `name`, creating it (inactive)
  // on first use. The reference stays valid for the process lifetime.
  static Failpoint& Get(const std::string& name);

  const std::string& name() const { return name_; }

  // Fast-path check: a single relaxed atomic load. False means the site is
  // not armed and must do nothing.
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  // Slow path, called only when armed(): evaluates the armed mode and
  // returns the fault to inject. Returns Ok when the mode decides not to
  // fire this hit (prob miss, `once` already spent) or when the action is a
  // delay (sleeps, then Ok). For error-class modes returns `natural_error`.
  // crash/oom do not return.
  Status Fire(const Status& natural_error);

  // Fire() with the generic transient error used by sites that have no more
  // specific natural failure.
  Status Fire() {
    return Fire(Status::Unavailable("failpoint " + name_ +
                                    ": injected fault"));
  }

  // For value-poisoning and branch-forcing sites: true when the armed mode
  // decides this hit should take the degraded/poisoned branch. Honors
  // once/prob/delay the same way Fire does; crash/oom still crash.
  bool FireBool();

  // Number of times the site actually fired (injected a fault). Survives
  // disarming; reset by Deactivate*.
  int64_t hits() const;

  ~Failpoint();

 private:
  friend class FailpointRegistry;

  explicit Failpoint(std::string name);  // Out-of-line: Armed is incomplete.
  Failpoint(const Failpoint&) = delete;
  Failpoint& operator=(const Failpoint&) = delete;

  struct Armed;  // Mode + arg + RNG state; lives behind the registry mutex.

  const std::string name_;
  std::atomic<bool> armed_{false};
  std::atomic<int64_t> hits_{0};
  std::unique_ptr<Armed> state_;  // Guarded by the registry mutex.
};

// Arms `name` with `spec` ("mode" or "mode:arg"). InvalidArgument on a
// malformed spec; the site is created if it does not exist yet, so faults
// can be armed before the code path that registers them first runs.
Status ActivateFailpoint(const std::string& name, const std::string& spec);

// Parses and arms a semicolon- (or comma-) separated list of
// "site=mode[:arg]" entries — the GRAPHALIGN_FAILPOINTS grammar.
Status ActivateFailpointsFromSpec(const std::string& spec);

void DeactivateFailpoint(const std::string& name);
void DeactivateAllFailpoints();

// All failpoint site names compiled into this binary, in registration-table
// order (the canonical list, independent of which sites have been hit).
std::vector<std::string> KnownFailpoints();

// The subset of sites currently armed, with their spec strings
// ("site=mode[:arg]").
std::vector<std::string> ArmedFailpoints();

}  // namespace graphalign

// Status-returning injection site: when armed with an error-class mode,
// returns `natural_error` from the enclosing function (which must return
// Status or Result<T>). delay sleeps and falls through; crash/oom die here.
#define GA_FAILPOINT_STATUS(site, natural_error)                      \
  do {                                                                \
    static ::graphalign::Failpoint& ga_fp__ =                         \
        ::graphalign::Failpoint::Get(site);                           \
    if (ga_fp__.armed()) {                                            \
      ::graphalign::Status ga_fp_status__ = ga_fp__.Fire(natural_error); \
      if (!ga_fp_status__.ok()) return ga_fp_status__;                \
    }                                                                 \
  } while (false)

// Status-returning site with the generic transient (Unavailable) error.
#define GA_FAILPOINT(site)                                            \
  do {                                                                \
    static ::graphalign::Failpoint& ga_fp__ =                         \
        ::graphalign::Failpoint::Get(site);                           \
    if (ga_fp__.armed()) {                                            \
      ::graphalign::Status ga_fp_status__ = ga_fp__.Fire();           \
      if (!ga_fp_status__.ok()) return ga_fp_status__;                \
    }                                                                 \
  } while (false)

// Branch-forcing site: evaluates to true when the armed mode fires. Usable
// in an `if`: `if (GA_FAILPOINT_FIRED("server.busy")) { ...reject... }`.
#define GA_FAILPOINT_FIRED(site)                                      \
  ([]() -> bool {                                                     \
    static ::graphalign::Failpoint& ga_fp__ =                         \
        ::graphalign::Failpoint::Get(site);                           \
    return ga_fp__.armed() && ga_fp__.FireBool();                     \
  }())

#endif  // GRAPHALIGN_COMMON_FAILPOINT_H_
