#include "common/table.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <sstream>

namespace graphalign {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::Num(double v, int precision) {
  if (std::isnan(v)) return "-";
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void Table::Print(std::ostream& os) const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << row[c];
    }
    os << "\n";
  };
  emit(header_);
  size_t total = 0;
  for (size_t w : width) total += w + 2;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit(row);
}

namespace {
std::string CsvEscape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += "\"";
  return out;
}
}  // namespace

void Table::PrintCsv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ",";
      os << CsvEscape(row[c]);
    }
    os << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

bool Table::WriteCsv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  PrintCsv(f);
  return static_cast<bool>(f);
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

// Emits a cell as a bare JSON number when the whole string parses as one
// (finite; JSON has no inf/nan), else as a quoted string. Keeps checked-in
// bench JSON directly loadable into dataframes without per-column casts.
void EmitJsonValue(std::ostream& os, const std::string& s) {
  if (!s.empty()) {
    char* end = nullptr;
    errno = 0;
    const double v = std::strtod(s.c_str(), &end);
    if (end == s.c_str() + s.size() && errno == 0 && std::isfinite(v)) {
      os << s;
      return;
    }
  }
  os << '"' << JsonEscape(s) << '"';
}

}  // namespace

void Table::PrintJson(
    std::ostream& os,
    const std::vector<std::pair<std::string, std::string>>& meta) const {
  os << "{\n  \"meta\": {";
  for (size_t i = 0; i < meta.size(); ++i) {
    if (i > 0) os << ", ";
    os << '"' << JsonEscape(meta[i].first) << "\": ";
    EmitJsonValue(os, meta[i].second);
  }
  os << "},\n  \"rows\": [";
  for (size_t r = 0; r < rows_.size(); ++r) {
    os << (r > 0 ? ",\n    {" : "\n    {");
    for (size_t c = 0; c < header_.size(); ++c) {
      if (c > 0) os << ", ";
      os << '"' << JsonEscape(header_[c]) << "\": ";
      EmitJsonValue(os, rows_[r][c]);
    }
    os << "}";
  }
  os << "\n  ]\n}\n";
}

bool Table::WriteJson(
    const std::string& path,
    const std::vector<std::pair<std::string, std::string>>& meta) const {
  std::ofstream f(path);
  if (!f) return false;
  PrintJson(f, meta);
  return static_cast<bool>(f);
}

}  // namespace graphalign
