#include "jobs/journal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/crc32.h"
#include "common/failpoint.h"

namespace graphalign {

namespace {

constexpr char kRecordMagic[4] = {'G', 'A', 'J', '1'};
constexpr size_t kRecordHeaderBytes =
    sizeof(kRecordMagic) + sizeof(uint32_t) + sizeof(uint32_t);

bool WriteAll(int fd, const char* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    const ssize_t n = write(fd, data + off, len - off);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

// Reads the whole journal into memory. Job events are state transitions
// (tens of bytes) plus one spec per job; at service-realistic job counts
// this is megabytes, and replay happens once per daemon start.
Result<std::string> ReadWholeFile(int fd) {
  std::string bytes;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = read(fd, buf, sizeof(buf));
    if (n == 0) return bytes;
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal("job journal read failed: " +
                              std::string(strerror(errno)));
    }
    bytes.append(buf, static_cast<size_t>(n));
  }
}

}  // namespace

std::string JobJournal::BuildRecord(std::string_view payload) {
  std::string record(kRecordMagic, sizeof(kRecordMagic));
  const uint32_t len = static_cast<uint32_t>(payload.size());
  const uint32_t crc = Crc32c(payload);
  record.append(reinterpret_cast<const char*>(&len), sizeof(len));
  record.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  record.append(payload);
  return record;
}

JobJournal::JobJournal(int fd, std::string path)
    : path_(std::move(path)), fd_(fd) {}

JobJournal::~JobJournal() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) close(fd_);
  fd_ = -1;
}

Result<std::unique_ptr<JobJournal>> JobJournal::Open(
    const std::string& dir,
    const std::function<void(std::string_view payload)>& on_record,
    ReplayStats* stats) {
  GA_FAILPOINT_STATUS("jobs.journal.replay.error",
                      Status::Internal("job journal unreadable (injected)"));
  if (dir.empty()) {
    return Status::InvalidArgument("job journal: directory path is empty");
  }
  if (mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::Internal("job journal: cannot create " + dir + ": " +
                            std::string(strerror(errno)));
  }
  const std::string path = dir + "/jobs.journal";
  const int fd = open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::Internal("job journal: cannot open " + path + ": " +
                            std::string(strerror(errno)));
  }
  auto bytes = ReadWholeFile(fd);
  if (!bytes.ok()) {
    close(fd);
    return bytes.status();
  }

  ReplayStats local;
  size_t pos = 0;            // Cursor into the journal.
  size_t good_end = 0;       // End offset of the last well-framed record.
  const std::string& log = *bytes;
  while (pos < log.size()) {
    const size_t remaining = log.size() - pos;
    if (remaining < kRecordHeaderBytes) break;  // Partial header: torn tail.
    if (std::memcmp(log.data() + pos, kRecordMagic, sizeof(kRecordMagic)) !=
        0) {
      break;  // Tail garbage; no trustworthy boundary past this point.
    }
    uint32_t len = 0, crc = 0;
    std::memcpy(&len, log.data() + pos + sizeof(kRecordMagic), sizeof(len));
    std::memcpy(&crc, log.data() + pos + sizeof(kRecordMagic) + sizeof(len),
                sizeof(crc));
    if (len == 0 || len > kMaxJournalPayload) break;
    if (remaining < kRecordHeaderBytes + len) break;  // Partial body.
    const std::string_view payload(log.data() + pos + kRecordHeaderBytes,
                                   len);
    pos += kRecordHeaderBytes + len;
    good_end = pos;
    if (Crc32c(payload) != crc) {
      // Framing is intact, content is not: local damage, skip just this
      // record and keep replaying the rest.
      ++local.crc_skipped;
      continue;
    }
    if (on_record) on_record(payload);
    ++local.replayed;
  }
  local.truncated_bytes = log.size() - good_end;
  if (local.truncated_bytes > 0) {
    // Drop the torn tail so future appends start at a record boundary.
    if (ftruncate(fd, static_cast<off_t>(good_end)) != 0) {
      close(fd);
      return Status::Internal("job journal: cannot truncate torn tail of " +
                              path + ": " + std::string(strerror(errno)));
    }
  }
  if (lseek(fd, 0, SEEK_END) < 0) {
    close(fd);
    return Status::Internal("job journal: cannot seek " + path + ": " +
                            std::string(strerror(errno)));
  }
  if (stats != nullptr) *stats = local;
  return std::unique_ptr<JobJournal>(new JobJournal(fd, path));
}

Status JobJournal::Append(std::string_view payload) {
  if (payload.empty() || payload.size() > kMaxJournalPayload) {
    return Status::InvalidArgument("job journal: bad record size " +
                                   std::to_string(payload.size()));
  }
  const std::string record = BuildRecord(payload);
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) {
    ++append_errors_;
    return Status::FailedPrecondition("job journal: not open");
  }
  if (GA_FAILPOINT_FIRED("jobs.journal.append.error")) {
    ++append_errors_;
    return Status::Unavailable("job journal append failed (injected)");
  }
  if (GA_FAILPOINT_FIRED("jobs.journal.append.torn")) {
    // Simulate dying mid-append: header plus half the payload reach disk.
    const size_t torn =
        kRecordHeaderBytes + (record.size() - kRecordHeaderBytes) / 2;
    (void)WriteAll(fd_, record.data(), torn);
    ++append_errors_;
    return Status::Unavailable("job journal append torn (injected)");
  }
  if (!WriteAll(fd_, record.data(), record.size())) {
    const int err = errno;
    ++append_errors_;
    // ENOSPC/EDQUOT are transient-environment failures, never corruption:
    // the record simply did not commit.
    return Status::Unavailable("job journal append failed: " +
                               std::string(strerror(err)));
  }
  if (fsync(fd_) != 0) {
    ++append_errors_;
    return Status::Unavailable("job journal fsync failed: " +
                               std::string(strerror(errno)));
  }
  return Status::Ok();
}

Status JobJournal::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return Status::FailedPrecondition("job journal: not open");
  if (fsync(fd_) != 0) {
    return Status::Unavailable("job journal fsync failed: " +
                               std::string(strerror(errno)));
  }
  return Status::Ok();
}

Status JobJournal::Compact(const std::vector<std::string>& live) {
  std::string fresh;
  for (const std::string& payload : live) {
    fresh += BuildRecord(payload);
  }
  const std::string tmp = path_ + ".tmp";
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) {
    return Status::FailedPrecondition("job journal: not open");
  }
  const int tfd = open(tmp.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (tfd < 0) {
    return Status::Unavailable("journal compact: cannot create " + tmp +
                               ": " + std::string(strerror(errno)));
  }
  if (!WriteAll(tfd, fresh.data(), fresh.size()) || fsync(tfd) != 0) {
    const int err = errno;
    close(tfd);
    unlink(tmp.c_str());
    return Status::Unavailable("journal compact: write/fsync of " + tmp +
                               " failed: " + std::string(strerror(err)));
  }
  if (rename(tmp.c_str(), path_.c_str()) != 0) {
    const int err = errno;
    close(tfd);
    unlink(tmp.c_str());
    return Status::Unavailable("journal compact: rename over " + path_ +
                               " failed: " + std::string(strerror(err)));
  }
  // Make the rename durable; the temp fd IS the new journal, so appends
  // keep going to the published file.
  std::string dir = path_;
  const size_t slash = dir.rfind('/');
  dir = slash == std::string::npos ? "." : dir.substr(0, slash);
  const int dfd = open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    (void)fsync(dfd);
    close(dfd);
  }
  close(fd_);
  fd_ = tfd;
  return Status::Ok();
}

uint64_t JobJournal::log_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return 0;
  struct stat st;
  if (fstat(fd_, &st) != 0) return 0;
  return static_cast<uint64_t>(st.st_size);
}

uint64_t JobJournal::append_errors() const {
  std::lock_guard<std::mutex> lock(mu_);
  return append_errors_;
}

}  // namespace graphalign
