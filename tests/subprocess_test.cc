// Tests for the process-isolated run executor (common/subprocess.h): real
// crashes, real out-of-memory kills, and real hangs are injected in the
// child and must come back as classified outcomes, never as test-process
// failures.
#include "common/subprocess.h"

#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <unistd.h>

#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace graphalign {
namespace {

TEST(RunStatusNameTest, CoversAllStatuses) {
  EXPECT_STREQ(RunStatusName(RunStatus::kOk), "OK");
  EXPECT_STREQ(RunStatusName(RunStatus::kExit), "EXIT");
  EXPECT_STREQ(RunStatusName(RunStatus::kCrash), "CRASH");
  EXPECT_STREQ(RunStatusName(RunStatus::kOom), "OOM");
  EXPECT_STREQ(RunStatusName(RunStatus::kTimeout), "TIMEOUT");
}

TEST(RunIsolatedTest, CleanExitRoundtripsPayload) {
  auto result = RunIsolated([](int payload_fd) {
    return WritePayload(payload_fd, "forty-two") ? 0 : 1;
  });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->status, RunStatus::kOk);
  EXPECT_EQ(result->exit_code, 0);
  ASSERT_TRUE(result->payload_valid);
  EXPECT_EQ(result->payload, "forty-two");
}

TEST(RunIsolatedTest, LargePayloadSurvivesPipeBuffering) {
  // Well past the 64KB default pipe capacity: the parent must drain while
  // the child writes, or this deadlocks and the wall cap kills it.
  const std::string big(4 << 20, 'x');
  SubprocessOptions options;
  options.wall_limit_seconds = 30.0;
  auto result = RunIsolated(
      [&](int payload_fd) { return WritePayload(payload_fd, big) ? 0 : 1; },
      options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->status, RunStatus::kOk) << result->detail;
  ASSERT_TRUE(result->payload_valid);
  EXPECT_EQ(result->payload, big);
}

TEST(RunIsolatedTest, NonzeroExitIsExitNotCrash) {
  auto result = RunIsolated([](int) { return 7; });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->status, RunStatus::kExit);
  EXPECT_EQ(result->exit_code, 7);
  EXPECT_FALSE(result->payload_valid);
}

TEST(RunIsolatedTest, AbortIsClassifiedAsCrash) {
  auto result = RunIsolated([](int) -> int { std::abort(); });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->status, RunStatus::kCrash);
  EXPECT_EQ(result->term_signal, SIGABRT);
  EXPECT_NE(result->detail.find("SIGABRT"), std::string::npos)
      << result->detail;
}

TEST(RunIsolatedTest, SegfaultIsClassifiedAsCrash) {
  auto result = RunIsolated([](int) {
    std::raise(SIGSEGV);
    return 0;
  });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->status, RunStatus::kCrash);
  EXPECT_EQ(result->term_signal, SIGSEGV);
}

TEST(RunIsolatedTest, CrashMidWriteLeavesPayloadInvalid) {
  auto result = RunIsolated([](int payload_fd) {
    // A torn frame: a few header bytes, then death.
    (void)!write(payload_fd, "GA", 2);
    std::raise(SIGSEGV);
    return 0;
  });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->status, RunStatus::kCrash);
  EXPECT_FALSE(result->payload_valid);
}

TEST(RunIsolatedTest, AllocationBeyondLimitIsOom) {
  SubprocessOptions options;
  options.mem_limit_bytes = 192ll << 20;  // 192 MB of headroom.
  options.wall_limit_seconds = 60.0;
  auto result = RunIsolated(
      [](int) {
        // Keep every block reachable and touch each page: an unused `new`
        // is legally elided by the optimizer, and untouched mappings stay
        // lazy.
        constexpr size_t kChunk = 32u << 20;
        std::vector<char*> blocks;
        unsigned long sum = 0;
        for (int i = 0; i < 64; ++i) {
          char* block = new char[kChunk];
          for (size_t off = 0; off < kChunk; off += 4096) block[off] = 1;
          blocks.push_back(block);
          sum += static_cast<unsigned long>(block[kChunk - 1]);
        }
        return sum > 0 ? 0 : 1;  // Unreachable under the limit.
      },
      options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->status, RunStatus::kOom) << result->detail;
}

TEST(RunIsolatedTest, NonCooperativeHangIsKilledAtWallCap) {
  SubprocessOptions options;
  options.wall_limit_seconds = 0.5;
  auto result = RunIsolated(
      [](int) {
        for (volatile uint64_t spin = 0;; spin = spin + 1) {
        }
        return 0;
      },
      options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->status, RunStatus::kTimeout);
  EXPECT_GE(result->wall_seconds, 0.5);
  EXPECT_LT(result->wall_seconds, 30.0);
}

TEST(RunIsolatedTest, CancelHookKillsTheChildAndMarksIt) {
  // The server's watchdog cancels hung children through this hook: once it
  // returns true, the parent's wait loop SIGKILLs the child and the outcome
  // is a kTimeout flagged killed_on_cancel — distinguishable from a
  // wall-cap kill, which the next assertion covers.
  SubprocessOptions options;
  options.wall_limit_seconds = 60.0;  // Far beyond the cancel.
  const auto armed_at = std::chrono::steady_clock::now();
  options.cancel = [armed_at] {
    return std::chrono::steady_clock::now() - armed_at >
           std::chrono::milliseconds(200);
  };
  auto result = RunIsolated(
      [](int) {
        for (volatile uint64_t spin = 0;; spin = spin + 1) {
        }
        return 0;
      },
      options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->status, RunStatus::kTimeout);
  EXPECT_TRUE(result->killed_on_cancel);
  EXPECT_LT(result->wall_seconds, 30.0);  // The 60 s cap never fired.
}

TEST(RunIsolatedTest, WallCapKillIsNotMarkedAsCancel) {
  SubprocessOptions options;
  options.wall_limit_seconds = 0.3;
  options.cancel = [] { return false; };  // Armed but never firing.
  auto result = RunIsolated(
      [](int) {
        for (volatile uint64_t spin = 0;; spin = spin + 1) {
        }
        return 0;
      },
      options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->status, RunStatus::kTimeout);
  EXPECT_FALSE(result->killed_on_cancel);
}

TEST(RunIsolatedTest, CancelThatNeverFiresLeavesCleanRunsUntouched) {
  SubprocessOptions options;
  options.cancel = [] { return false; };
  auto result = RunIsolated([](int payload_fd) {
    return WritePayload(payload_fd, "done") ? 0 : 1;
  });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->status, RunStatus::kOk);
  EXPECT_FALSE(result->killed_on_cancel);
}

TEST(CountProcThreadsTest, SeesAtLeastTheMainThread) {
  auto threads = CountProcThreads();
  ASSERT_TRUE(threads.ok()) << threads.status().ToString();
  EXPECT_GE(*threads, 1);
}

}  // namespace
}  // namespace graphalign
