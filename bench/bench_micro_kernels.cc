// Google-benchmark microbenchmarks for the numerical and combinatorial
// kernels underneath the alignment algorithms: LAP solvers, eigensolvers,
// SVD, Sinkhorn, sparse products, generators, and graphlet counting.
#include <benchmark/benchmark.h>

#include "assignment/assignment.h"
#include "common/random.h"
#include "graph/generators.h"
#include "graph/graphlets.h"
#include "linalg/csr.h"
#include "linalg/dense.h"
#include "linalg/eigen_sym.h"
#include "linalg/sinkhorn.h"
#include "linalg/svd.h"

namespace graphalign {
namespace {

DenseMatrix RandomMatrix(int rows, int cols, uint64_t seed) {
  Rng rng(seed);
  DenseMatrix m(rows, cols);
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) m(i, j) = rng.Uniform();
  }
  return m;
}

void BM_JonkerVolgenant(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  DenseMatrix sim = RandomMatrix(n, n, 1);
  for (auto _ : state) {
    auto a = JonkerVolgenantAssign(sim);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_JonkerVolgenant)->Arg(64)->Arg(256)->Arg(512);

void BM_Hungarian(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  DenseMatrix sim = RandomMatrix(n, n, 2);
  for (auto _ : state) {
    auto a = HungarianAssign(sim);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_Hungarian)->Arg(64)->Arg(256);

void BM_SortGreedy(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  DenseMatrix sim = RandomMatrix(n, n, 3);
  for (auto _ : state) {
    auto a = SortGreedyAssign(sim);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_SortGreedy)->Arg(64)->Arg(256)->Arg(512);

void BM_SymmetricEigenFull(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  DenseMatrix a = RandomMatrix(n, n, 4);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < i; ++j) a(j, i) = a(i, j);
  }
  for (auto _ : state) {
    auto res = SymmetricEigen(a);
    benchmark::DoNotOptimize(res);
  }
}
BENCHMARK(BM_SymmetricEigenFull)->Arg(64)->Arg(128)->Arg(256);

void BM_LanczosTop20(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(5);
  auto g = BarabasiAlbert(n, 5, &rng);
  GA_CHECK(g.ok());
  const CsrMatrix adj = g->SymNormalizedAdjacencyCsr();
  LinearOperator op = [&adj](const std::vector<double>& x,
                             std::vector<double>* y) {
    *y = adj.Multiply(x);
  };
  for (auto _ : state) {
    auto res = LanczosEigen(op, n, 20, SpectrumEnd::kLargest);
    benchmark::DoNotOptimize(res);
  }
}
BENCHMARK(BM_LanczosTop20)->Arg(512)->Arg(2048);

void BM_JacobiSvd(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  DenseMatrix a = RandomMatrix(2 * n, n, 6);
  for (auto _ : state) {
    auto res = Svd(a);
    benchmark::DoNotOptimize(res);
  }
}
BENCHMARK(BM_JacobiSvd)->Arg(32)->Arg(64)->Arg(128);

void BM_Sinkhorn(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  DenseMatrix cost = RandomMatrix(n, n, 7);
  auto mu = UniformMarginal(n);
  for (auto _ : state) {
    auto t = SinkhornTransport(cost, mu, mu);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_Sinkhorn)->Arg(128)->Arg(512);

void BM_SpMMDense(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(8);
  auto g = BarabasiAlbert(n, 8, &rng);
  GA_CHECK(g.ok());
  const CsrMatrix adj = g->AdjacencyCsr();
  DenseMatrix x = RandomMatrix(n, 64, 9);
  for (auto _ : state) {
    DenseMatrix y = adj.Multiply(x);
    benchmark::DoNotOptimize(y);
  }
}
BENCHMARK(BM_SpMMDense)->Arg(1024)->Arg(4096);

void BM_GeneratorEr(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(10);
  for (auto _ : state) {
    auto g = ErdosRenyi(n, 10.0 / n, &rng);
    benchmark::DoNotOptimize(g);
  }
}
BENCHMARK(BM_GeneratorEr)->Arg(1024)->Arg(16384);

void BM_GeneratorConfigModel(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(11);
  for (auto _ : state) {
    std::vector<int> deg = NormalDegreeSequence(n, 10.0, 2.5, &rng);
    auto g = ConfigurationModel(deg, &rng);
    benchmark::DoNotOptimize(g);
  }
}
BENCHMARK(BM_GeneratorConfigModel)->Arg(1024)->Arg(16384);

void BM_GraphletOrbits(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(12);
  auto g = BarabasiAlbert(n, 4, &rng);
  GA_CHECK(g.ok());
  for (auto _ : state) {
    auto orbits = CountGraphletOrbits(*g);
    benchmark::DoNotOptimize(orbits);
  }
}
BENCHMARK(BM_GraphletOrbits)->Arg(128)->Arg(512);

}  // namespace
}  // namespace graphalign

BENCHMARK_MAIN();
