// Deterministic random number generation for reproducible experiments.
//
// All stochastic components in graphalign (graph generators, noise models,
// algorithm initialization) draw from an explicitly passed Rng so that a
// single seed reproduces an entire experiment.
#ifndef GRAPHALIGN_COMMON_RANDOM_H_
#define GRAPHALIGN_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace graphalign {

// xoshiro256** PRNG (Blackman & Vigna). Fast, high quality, and — unlike
// std::mt19937 — identically behaved across standard library versions, which
// keeps experiment outputs byte-stable.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~0ULL; }

  uint64_t operator()() { return Next(); }
  uint64_t Next();

  // Uniform in [0, 1).
  double Uniform();
  // Uniform in [lo, hi).
  double Uniform(double lo, double hi);
  // Uniform integer in [0, n). Requires n > 0. Uses rejection sampling to
  // avoid modulo bias.
  uint64_t UniformInt(uint64_t n);
  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);
  // Bernoulli trial with success probability p.
  bool Bernoulli(double p);
  // Standard normal via Marsaglia polar method.
  double Normal();
  double Normal(double mean, double stddev);
  // Pareto/power-law sample with exponent `alpha` and minimum value `xmin`:
  // density ~ x^-alpha for x >= xmin.
  double PowerLaw(double alpha, double xmin);

  // In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = UniformInt(static_cast<uint64_t>(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  // A derived generator with an independent stream; used to hand child seeds
  // to sub-tasks (one per noise repetition, etc.).
  Rng Fork();

 private:
  uint64_t s_[4];
};

// A uniformly random permutation of {0, ..., n-1}.
std::vector<int> RandomPermutation(int n, Rng* rng);

}  // namespace graphalign

#endif  // GRAPHALIGN_COMMON_RANDOM_H_
