file(REMOVE_RECURSE
  "CMakeFiles/ga_common.dir/memory.cc.o"
  "CMakeFiles/ga_common.dir/memory.cc.o.d"
  "CMakeFiles/ga_common.dir/parallel.cc.o"
  "CMakeFiles/ga_common.dir/parallel.cc.o.d"
  "CMakeFiles/ga_common.dir/random.cc.o"
  "CMakeFiles/ga_common.dir/random.cc.o.d"
  "CMakeFiles/ga_common.dir/status.cc.o"
  "CMakeFiles/ga_common.dir/status.cc.o.d"
  "CMakeFiles/ga_common.dir/table.cc.o"
  "CMakeFiles/ga_common.dir/table.cc.o.d"
  "libga_common.a"
  "libga_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ga_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
