// Quickstart: the smallest end-to-end use of the graphalign public API.
//
//   1. Generate a graph (or load one with ReadEdgeList).
//   2. Derive a noisy, shuffled copy with a hidden ground-truth mapping.
//   3. Run an alignment algorithm.
//   4. Score the recovered correspondence.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "align/aligner.h"
#include "common/random.h"
#include "graph/generators.h"
#include "metrics/metrics.h"
#include "noise/noise.h"

int main() {
  using namespace graphalign;

  // 1. A small scale-free graph.
  Rng rng(2023);
  auto base = BarabasiAlbert(/*n=*/200, /*m=*/4, &rng);
  if (!base.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 base.status().ToString().c_str());
    return 1;
  }
  std::printf("base graph: %d nodes, %lld edges\n", base->num_nodes(),
              static_cast<long long>(base->num_edges()));

  // 2. Remove 3% of edges and shuffle node labels.
  NoiseOptions noise;
  noise.type = NoiseType::kOneWay;
  noise.level = 0.03;
  auto problem = MakeAlignmentProblem(*base, noise, &rng);
  if (!problem.ok()) {
    std::fprintf(stderr, "%s\n", problem.status().ToString().c_str());
    return 1;
  }

  // 3. Align with CONE (the paper's strongest all-rounder) and extract a
  //    one-to-one matching with the Jonker-Volgenant LAP solver.
  auto cone = MakeAligner("CONE");
  auto alignment = (*cone)->Align(problem->g1, problem->g2,
                                  AssignmentMethod::kJonkerVolgenant);
  if (!alignment.ok()) {
    std::fprintf(stderr, "%s\n", alignment.status().ToString().c_str());
    return 1;
  }

  // 4. Score against the hidden permutation.
  QualityReport q = EvaluateAlignment(problem->g1, problem->g2, *alignment,
                                      problem->ground_truth);
  std::printf("accuracy=%.3f  MNC=%.3f  EC=%.3f  ICS=%.3f  S3=%.3f\n",
              q.accuracy, q.mnc, q.ec, q.ics, q.s3);
  return q.accuracy > 0.5 ? 0 : 1;
}
