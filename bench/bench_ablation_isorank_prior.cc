// Ablation (paper §6.1): IsoRank's degree-similarity prior
// sim(u,v) = 1 - |d_u - d_v| / max(d_u, d_v) versus the uniform prior of
// earlier comparisons. The paper attributes IsoRank's unexpectedly strong
// showing to this weighting; the ablation quantifies it.
#include <string>

#include "align/isorank.h"
#include "bench_util.h"
#include "common/random.h"
#include "graph/generators.h"

namespace graphalign {
namespace {

int Main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  bench::Banner("Ablation", "IsoRank degree prior vs uniform prior (§6.1)",
                args);
  const int n = args.full ? 1133 : 200;
  const int reps = args.repetitions > 0 ? args.repetitions : 3;
  Rng rng(args.seed);
  auto base = PowerlawCluster(n, 5, 0.5, &rng);
  GA_CHECK(base.ok());

  Table t({"prior", "noise", "accuracy"});
  for (bool degree_prior : {true, false}) {
    IsoRankOptions opts;
    opts.use_degree_prior = degree_prior;
    IsoRankAligner iso(opts);
    for (double level : bench::LowNoiseLevels(args.full)) {
      NoiseOptions noise;
      noise.level = level;
      RunOutcome out = RunAveraged(&iso, *base, noise,
                                   AssignmentMethod::kJonkerVolgenant, reps,
                                   args.seed, args);
      t.AddRow({degree_prior ? "degree" : "uniform", Table::Num(level, 2),
                FormatAccuracy(out)});
    }
  }
  bench::Emit(t, args);
  return 0;
}

}  // namespace
}  // namespace graphalign

int main(int argc, char** argv) { return graphalign::Main(argc, argv); }
