// Property-based sweeps across generators, metrics, noise, and solvers:
// invariants that must hold for arbitrary seeds/sizes, exercised via
// parameterized gtest instantiations.
#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "align/netalign.h"
#include "assignment/assignment.h"
#include "common/random.h"
#include "graph/generators.h"
#include "graph/graphlets.h"
#include "linalg/eigen_sym.h"
#include "metrics/metrics.h"
#include "noise/noise.h"

namespace graphalign {
namespace {

// ---------------------------------------------------------------------------
// Generator invariants across models and seeds.

struct GeneratorCase {
  std::string name;
  int n;
  uint64_t seed;
};

class GeneratorPropertyTest
    : public testing::TestWithParam<std::tuple<std::string, int, uint64_t>> {
 protected:
  Result<Graph> Generate() {
    auto [model, n, seed] = GetParam();
    Rng rng(seed);
    if (model == "er") return ErdosRenyi(n, 8.0 / n, &rng);
    if (model == "ba") return BarabasiAlbert(n, 3, &rng);
    if (model == "ws") return WattsStrogatz(n, 6, 0.3, &rng);
    if (model == "nw") return NewmanWatts(n, 4, 0.3, &rng);
    if (model == "pl") return PowerlawCluster(n, 3, 0.5, &rng);
    if (model == "geo") return RandomGeometric(n, 0.15, &rng);
    if (model == "config") {
      std::vector<int> deg = NormalDegreeSequence(n, 6.0, 1.5, &rng);
      return ConfigurationModel(deg, &rng);
    }
    return Status::InvalidArgument("unknown model");
  }
};

INSTANTIATE_TEST_SUITE_P(
    Models, GeneratorPropertyTest,
    testing::Combine(testing::Values("er", "ba", "ws", "nw", "pl", "geo",
                                     "config"),
                     testing::Values(40, 150), testing::Values(1u, 99u)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_n" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

TEST_P(GeneratorPropertyTest, ProducesSimpleGraphOfRequestedSize) {
  auto g = Generate();
  ASSERT_TRUE(g.ok());
  auto [model, n, seed] = GetParam();
  EXPECT_EQ(g->num_nodes(), n);
  // Simple graph: neighbor lists sorted, deduplicated, no self-loops.
  int64_t degree_sum = 0;
  for (int v = 0; v < n; ++v) {
    auto nbrs = g->Neighbors(v);
    degree_sum += static_cast<int64_t>(nbrs.size());
    for (size_t i = 0; i < nbrs.size(); ++i) {
      EXPECT_NE(nbrs[i], v);
      if (i > 0) EXPECT_LT(nbrs[i - 1], nbrs[i]);
    }
  }
  EXPECT_EQ(degree_sum, 2 * g->num_edges());
}

TEST_P(GeneratorPropertyTest, AdjacencySymmetry) {
  auto g = Generate();
  ASSERT_TRUE(g.ok());
  for (const Edge& e : g->Edges()) {
    EXPECT_TRUE(g->HasEdge(e.u, e.v));
    EXPECT_TRUE(g->HasEdge(e.v, e.u));
  }
}

TEST_P(GeneratorPropertyTest, LaplacianSpectrumInValidRange) {
  auto g = Generate();
  ASSERT_TRUE(g.ok());
  if (g->num_nodes() > 60) return;  // Dense solver cost guard.
  auto eig = SymmetricEigen(g->NormalizedLaplacianDense());
  ASSERT_TRUE(eig.ok());
  // Normalized Laplacian eigenvalues lie in [0, 2]; smallest is ~0.
  EXPECT_NEAR(eig->eigenvalues.front(), 0.0, 1e-9);
  for (double l : eig->eigenvalues) {
    EXPECT_GE(l, -1e-9);
    EXPECT_LE(l, 2.0 + 1e-9);
  }
}

TEST_P(GeneratorPropertyTest, PermutationPreservesDegreeMultiset) {
  auto g = Generate();
  ASSERT_TRUE(g.ok());
  auto [model, n, seed] = GetParam();
  Rng rng(seed + 7);
  std::vector<int> perm = RandomPermutation(n, &rng);
  auto pg = g->Permuted(perm);
  ASSERT_TRUE(pg.ok());
  std::vector<int> d1(n), d2(n);
  for (int v = 0; v < n; ++v) {
    d1[v] = g->Degree(v);
    d2[v] = pg->Degree(v);
  }
  std::sort(d1.begin(), d1.end());
  std::sort(d2.begin(), d2.end());
  EXPECT_EQ(d1, d2);
  // Triangle multiset is also permutation-invariant.
  auto t1 = g->TriangleCounts();
  auto t2 = pg->TriangleCounts();
  std::sort(t1.begin(), t1.end());
  std::sort(t2.begin(), t2.end());
  EXPECT_EQ(t1, t2);
}

// ---------------------------------------------------------------------------
// Metric invariants under ground-truth alignment, across noise types/levels.

class MetricPropertyTest
    : public testing::TestWithParam<std::tuple<NoiseType, double, uint64_t>> {
};

INSTANTIATE_TEST_SUITE_P(
    Noise, MetricPropertyTest,
    testing::Combine(testing::Values(NoiseType::kOneWay,
                                     NoiseType::kMultiModal,
                                     NoiseType::kTwoWay),
                     testing::Values(0.0, 0.05, 0.20),
                     testing::Values(3u, 17u)),
    [](const auto& info) {
      std::string t = NoiseTypeName(std::get<0>(info.param));
      std::replace(t.begin(), t.end(), '-', '_');
      return t + "_l" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 100)) +
             "_s" + std::to_string(std::get<2>(info.param));
    });

TEST_P(MetricPropertyTest, GroundTruthScoresBoundedAndConsistent) {
  auto [type, level, seed] = GetParam();
  Rng rng(seed);
  auto base = PowerlawCluster(120, 3, 0.4, &rng);
  ASSERT_TRUE(base.ok());
  NoiseOptions noise;
  noise.type = type;
  noise.level = level;
  auto prob = MakeAlignmentProblem(*base, noise, &rng);
  ASSERT_TRUE(prob.ok());
  QualityReport q = EvaluateAlignment(prob->g1, prob->g2, prob->ground_truth,
                                      prob->ground_truth);
  // Ground-truth alignment always has accuracy 1 and all scores in [0,1].
  EXPECT_DOUBLE_EQ(q.accuracy, 1.0);
  for (double v : {q.mnc, q.ec, q.ics, q.s3}) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0 + 1e-12);
  }
  if (level == 0.0) {
    EXPECT_DOUBLE_EQ(q.ec, 1.0);
    EXPECT_DOUBLE_EQ(q.s3, 1.0);
    EXPECT_DOUBLE_EQ(q.mnc, 1.0);
  }
  // One-way noise only removes target edges: every surviving target edge is
  // the image of a source edge, so ICS of the truth mapping is 1.
  if (type == NoiseType::kOneWay) {
    EXPECT_NEAR(q.ics, 1.0, 1e-12);
  }
  // S3 never exceeds min(EC, ICS) (it shares the numerator with a larger
  // denominator).
  EXPECT_LE(q.s3, std::min(q.ec, q.ics) + 1e-12);
}

TEST_P(MetricPropertyTest, RandomAlignmentScoresNearZero) {
  auto [type, level, seed] = GetParam();
  Rng rng(seed + 1000);
  auto base = PowerlawCluster(120, 3, 0.4, &rng);
  ASSERT_TRUE(base.ok());
  NoiseOptions noise;
  noise.type = type;
  noise.level = level;
  auto prob = MakeAlignmentProblem(*base, noise, &rng);
  ASSERT_TRUE(prob.ok());
  Alignment random_align = RandomPermutation(120, &rng);
  QualityReport q = EvaluateAlignment(prob->g1, prob->g2, random_align,
                                      prob->ground_truth);
  EXPECT_LT(q.accuracy, 0.1);
  EXPECT_LT(q.s3, 0.2);
}

// ---------------------------------------------------------------------------
// LAP solver optimality agreement across sizes and value distributions.

class LapPropertyTest
    : public testing::TestWithParam<std::tuple<int, int, uint64_t>> {};

INSTANTIATE_TEST_SUITE_P(
    Sizes, LapPropertyTest,
    testing::Combine(testing::Values(3, 17, 64), testing::Values(0, 1, 2),
                     testing::Values(5u, 23u)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_dist" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

TEST_P(LapPropertyTest, HungarianAndJvAgreeOnObjective) {
  auto [n, dist, seed] = GetParam();
  Rng rng(seed);
  DenseMatrix sim(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      switch (dist) {
        case 0:
          sim(i, j) = rng.Uniform();
          break;
        case 1:
          sim(i, j) = rng.Normal();  // Negative values allowed.
          break;
        default:
          // Heavily tied values: the degenerate regime that once hung JV.
          sim(i, j) = rng.UniformInt(uint64_t{3}) * 0.5;
          break;
      }
    }
  }
  auto h = HungarianAssign(sim);
  auto jv = JonkerVolgenantAssign(sim);
  ASSERT_TRUE(h.ok() && jv.ok());
  EXPECT_NEAR(AlignmentScore(sim, *h), AlignmentScore(sim, *jv), 1e-7);
  // Both are complete one-to-one matchings.
  std::set<int> used_h(h->begin(), h->end()), used_jv(jv->begin(), jv->end());
  EXPECT_EQ(used_h.size(), static_cast<size_t>(n));
  EXPECT_EQ(used_jv.size(), static_cast<size_t>(n));
}

TEST_P(LapPropertyTest, OptimalDominatesGreedyAndNN) {
  auto [n, dist, seed] = GetParam();
  Rng rng(seed + 500);
  DenseMatrix sim(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) sim(i, j) = rng.Uniform();
  }
  auto jv = JonkerVolgenantAssign(sim);
  auto sg = SortGreedyAssign(sim);
  ASSERT_TRUE(jv.ok() && sg.ok());
  EXPECT_GE(AlignmentScore(sim, *jv), AlignmentScore(sim, *sg) - 1e-9);
}

// ---------------------------------------------------------------------------
// Graphlet-orbit identities that hold for any graph.

class GraphletPropertyTest : public testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, GraphletPropertyTest,
                         testing::Values(2u, 11u, 31u, 47u));

TEST_P(GraphletPropertyTest, OrbitCountingIdentities) {
  Rng rng(GetParam());
  auto g = ErdosRenyi(35, 0.18, &rng);
  ASSERT_TRUE(g.ok());
  auto orbits = CountGraphletOrbits(*g);
  ASSERT_TRUE(orbits.ok());
  const int n = g->num_nodes();
  // Identity 1: orbit 0 equals the degree.
  for (int v = 0; v < n; ++v) {
    EXPECT_DOUBLE_EQ((*orbits)(v, 0), g->Degree(v));
  }
  // Identity 2: sum of triangle orbits = 3 * (#triangles).
  double orbit3_sum = 0.0;
  int64_t tri_sum = 0;
  for (int64_t t : g->TriangleCounts()) tri_sum += t;
  for (int v = 0; v < n; ++v) orbit3_sum += (*orbits)(v, 3);
  EXPECT_DOUBLE_EQ(orbit3_sum, static_cast<double>(tri_sum));
  // Identity 3: each graphlet type contributes a fixed orbit-count vector:
  // per P4: two orbit-4 and two orbit-5 touches.
  double o4 = 0.0, o5 = 0.0, o6 = 0.0, o7 = 0.0, o8 = 0.0, o14 = 0.0;
  for (int v = 0; v < n; ++v) {
    o4 += (*orbits)(v, 4);
    o5 += (*orbits)(v, 5);
    o6 += (*orbits)(v, 6);
    o7 += (*orbits)(v, 7);
    o8 += (*orbits)(v, 8);
    o14 += (*orbits)(v, 14);
  }
  EXPECT_DOUBLE_EQ(o4, o5);          // P4: 2 ends, 2 middles.
  EXPECT_DOUBLE_EQ(o6, 3.0 * o7);    // Claw: 3 leaves per center.
  EXPECT_EQ(std::fmod(o8, 4.0), 0);  // C4 touches 4 nodes.
  EXPECT_EQ(std::fmod(o14, 4.0), 0);  // K4 touches 4 nodes.
}

// ---------------------------------------------------------------------------
// Sinkhorn-like invariants for noise accounting.

class NoiseAccountingTest
    : public testing::TestWithParam<std::tuple<double, uint64_t>> {};

INSTANTIATE_TEST_SUITE_P(Levels, NoiseAccountingTest,
                         testing::Combine(testing::Values(0.01, 0.10, 0.25),
                                          testing::Values(7u, 77u)));

TEST_P(NoiseAccountingTest, EdgeBudgetsExact) {
  auto [level, seed] = GetParam();
  Rng rng(seed);
  auto base = BarabasiAlbert(150, 4, &rng);
  ASSERT_TRUE(base.ok());
  const int64_t k = std::llround(level * static_cast<double>(base->num_edges()));
  for (NoiseType type : {NoiseType::kOneWay, NoiseType::kMultiModal,
                         NoiseType::kTwoWay}) {
    NoiseOptions noise;
    noise.type = type;
    noise.level = level;
    auto prob = MakeAlignmentProblem(*base, noise, &rng);
    ASSERT_TRUE(prob.ok());
    switch (type) {
      case NoiseType::kOneWay:
        EXPECT_EQ(prob->g1.num_edges(), base->num_edges());
        EXPECT_EQ(prob->g2.num_edges(), base->num_edges() - k);
        break;
      case NoiseType::kMultiModal:
        EXPECT_EQ(prob->g2.num_edges(), base->num_edges());
        break;
      case NoiseType::kTwoWay:
        EXPECT_EQ(prob->g1.num_edges(), base->num_edges() - k);
        EXPECT_EQ(prob->g2.num_edges(), base->num_edges() - k);
        break;
    }
  }
}

// ---------------------------------------------------------------------------
// NetAlign (excluded baseline) sanity.

TEST(NetAlignTest, ValidOneToOneOutputButWeakerThanIncludedMethods) {
  Rng rng(41);
  auto base = PowerlawCluster(100, 3, 0.4, &rng);
  ASSERT_TRUE(base.ok());
  NoiseOptions noise;
  noise.level = 0.02;
  auto prob = MakeAlignmentProblem(*base, noise, &rng);
  ASSERT_TRUE(prob.ok());
  NetAlignAligner netalign;
  auto align = netalign.AlignNative(prob->g1, prob->g2);
  ASSERT_TRUE(align.ok());
  std::set<int> used;
  for (int t : *align) {
    if (t >= 0) EXPECT_TRUE(used.insert(t).second);
  }
  const double acc = Accuracy(*align, prob->ground_truth);
  EXPECT_GT(acc, 0.02);  // Better than random...
  EXPECT_LT(acc, 0.9);   // ...but clearly below the included nine (§4).
}

TEST(NetAlignTest, SimilarityIsSparseOnCandidates) {
  Rng rng(43);
  auto g = BarabasiAlbert(60, 3, &rng);
  ASSERT_TRUE(g.ok());
  NetAlignOptions opts;
  opts.candidates_per_node = 5;
  NetAlignAligner netalign(opts);
  auto sim = netalign.ComputeSimilarity(*g, *g);
  ASSERT_TRUE(sim.ok());
  int64_t nonzero = 0;
  for (int i = 0; i < 60; ++i) {
    for (int j = 0; j < 60; ++j) nonzero += ((*sim)(i, j) != 0.0);
  }
  EXPECT_LE(nonzero, 60 * 5);
}

TEST(NetAlignTest, RejectsBadOptions) {
  Rng rng(47);
  auto g = ErdosRenyi(10, 0.3, &rng);
  ASSERT_TRUE(g.ok());
  NetAlignOptions opts;
  opts.damping = 1.0;
  EXPECT_FALSE(NetAlignAligner(opts).ComputeSimilarity(*g, *g).ok());
  opts = NetAlignOptions();
  opts.candidates_per_node = 0;
  EXPECT_FALSE(NetAlignAligner(opts).AlignNative(*g, *g).ok());
}

}  // namespace
}  // namespace graphalign
