// Deterministic data parallelism for the numerical kernels.
//
// The paper's testbed runs every algorithm on 28 cores; this pool provides
// the equivalent for the row-parallel kernels (dense products, similarity
// matrices, GW gradients). Work is partitioned into contiguous index blocks
// and each block writes disjoint rows, so results are byte-identical to the
// sequential execution regardless of thread count.
//
// Thread count: GRAPHALIGN_THREADS env var, else hardware concurrency.
#ifndef GRAPHALIGN_COMMON_PARALLEL_H_
#define GRAPHALIGN_COMMON_PARALLEL_H_

#include <cstdint>
#include <functional>

namespace graphalign {

// Number of worker threads the pool uses (>= 1).
int ParallelThreadCount();

// Number of pool worker threads actually started so far: 0 until the first
// pool dispatch, ParallelThreadCount() - 1 afterwards. Fork-based isolation
// (common/subprocess.h) uses this to tell the known fork-tolerant pool
// threads apart from foreign threads it must refuse to fork under.
int ParallelWorkersStarted();

// Invokes fn(begin, end) over a partition of [0, n) across the pool.
// Blocks until all blocks complete. Falls back to a single inline call when
// n < min_work or only one thread is configured. fn must write only to
// locations indexed by its own [begin, end) range.
//
// Reentrancy: a ParallelFor issued from inside a pool job (i.e. from within
// fn) runs inline on the calling thread — the pool has a single job slot,
// so nesting never touches shared pool state.
void ParallelFor(int64_t n, const std::function<void(int64_t, int64_t)>& fn,
                 int64_t min_work = 4096);

}  // namespace graphalign

#endif  // GRAPHALIGN_COMMON_PARALLEL_H_
