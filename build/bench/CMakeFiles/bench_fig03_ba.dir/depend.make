# Empty dependencies file for bench_fig03_ba.
# This may be replaced when dependencies are built.
