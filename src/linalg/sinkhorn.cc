#include "linalg/sinkhorn.h"

#include <algorithm>
#include <cmath>

namespace graphalign {

std::vector<double> UniformMarginal(int n) {
  GA_CHECK(n > 0);
  return std::vector<double>(n, 1.0 / n);
}

Result<DenseMatrix> SinkhornProject(const DenseMatrix& kernel,
                                    const std::vector<double>& mu,
                                    const std::vector<double>& nu,
                                    int max_iters, double tolerance,
                                    const Deadline& deadline) {
  const int n = kernel.rows();
  const int m = kernel.cols();
  if (static_cast<int>(mu.size()) != n || static_cast<int>(nu.size()) != m) {
    return Status::InvalidArgument("SinkhornProject: marginal size mismatch");
  }
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < m; ++j) {
      if (!(kernel(i, j) >= 0.0) || !std::isfinite(kernel(i, j))) {
        return Status::InvalidArgument(
            "SinkhornProject: kernel must be finite and non-negative");
      }
    }
  }
  std::vector<double> a(n, 1.0);
  std::vector<double> b(m, 1.0);
  std::vector<double> kb(n), ka(m);
  constexpr double kTiny = 1e-300;

  DeadlineChecker checker(deadline, /*stride=*/8);
  for (int iter = 0; iter < max_iters; ++iter) {
    GA_RETURN_IF_EXPIRED(checker, "SinkhornProject");
    // a = mu / (K b)
    for (int i = 0; i < n; ++i) {
      double s = 0.0;
      const double* krow = kernel.Row(i);
      for (int j = 0; j < m; ++j) s += krow[j] * b[j];
      kb[i] = s;
      a[i] = mu[i] / std::max(s, kTiny);
    }
    // b = nu / (K^T a)
    std::fill(ka.begin(), ka.end(), 0.0);
    for (int i = 0; i < n; ++i) {
      const double* krow = kernel.Row(i);
      const double ai = a[i];
      for (int j = 0; j < m; ++j) ka[j] += krow[j] * ai;
    }
    double err = 0.0;
    for (int j = 0; j < m; ++j) {
      err += std::fabs(ka[j] * b[j] - nu[j]);
      b[j] = nu[j] / std::max(ka[j], kTiny);
    }
    if (err < tolerance) break;
  }

  DenseMatrix t(n, m);
  for (int i = 0; i < n; ++i) {
    const double* krow = kernel.Row(i);
    double* trow = t.Row(i);
    for (int j = 0; j < m; ++j) trow[j] = a[i] * krow[j] * b[j];
  }
  return t;
}

Result<DenseMatrix> SinkhornTransport(const DenseMatrix& cost,
                                      const std::vector<double>& mu,
                                      const std::vector<double>& nu,
                                      const SinkhornOptions& options,
                                      const Deadline& deadline) {
  const int n = cost.rows();
  const int m = cost.cols();
  if (n == 0 || m == 0) {
    return Status::InvalidArgument("SinkhornTransport: empty cost matrix");
  }
  if (options.epsilon <= 0.0) {
    return Status::InvalidArgument("SinkhornTransport: epsilon must be > 0");
  }
  // Stabilize: exp(-(C - min C)/eps) keeps the kernel in (0, 1].
  double cmin = cost(0, 0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < m; ++j) cmin = std::min(cmin, cost(i, j));
  }
  DenseMatrix kernel(n, m);
  for (int i = 0; i < n; ++i) {
    const double* crow = cost.Row(i);
    double* krow = kernel.Row(i);
    for (int j = 0; j < m; ++j) {
      krow[j] = std::exp(-(crow[j] - cmin) / options.epsilon);
    }
  }
  return SinkhornProject(kernel, mu, nu, options.max_iters, options.tolerance,
                         deadline);
}

}  // namespace graphalign
