// Graph-store chaos suite (DESIGN.md §15): crash-shaped and injected
// faults against the content-addressed store, plus the daemon's degrade
// paths. Torn writes never publish, bit rot comes back as typed kCorrupt
// with the file quarantined — never a crash, never served — and a daemon
// whose --store-dir is unusable keeps serving the wire-graph path.
// Registered under the `store` and `chaos` ctest labels; tools/run_chaos.sh
// drives the same failpoint sites through the CLI.
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/random.h"
#include "common/status.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "store/graph_store.h"
#include "store/gst.h"

namespace graphalign {
namespace {

Graph SmallGraph(uint64_t seed) {
  Rng rng(seed);
  auto g = ErdosRenyi(30, 0.2, &rng);
  GA_CHECK(g.ok());
  return *std::move(g);
}

class StoreChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/ga_store_chaosXXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }

  void TearDown() override {
    DeactivateAllFailpoints();
    std::string cmd = "rm -rf '" + dir_ + "'";
    ASSERT_EQ(std::system(cmd.c_str()), 0);
  }

  int CountFilesMatching(const std::string& pattern) const {
    std::string cmd =
        "ls -1 '" + dir_ + "' 2>/dev/null | grep -c -- '" + pattern + "'";
    FILE* p = ::popen(cmd.c_str(), "r");
    if (p == nullptr) return -1;
    int count = -1;
    if (std::fscanf(p, "%d", &count) != 1) count = 0;
    ::pclose(p);
    return count;
  }

  std::string dir_;
};

// ---------------------------------------------------------------------------
// Injected write-path faults: Put fails typed, nothing partial is visible.

TEST_F(StoreChaosTest, WriteErrorFailsPutWithoutPublishing) {
  auto store = GraphStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  const Graph g = SmallGraph(1);
  ASSERT_TRUE(ActivateFailpoint("store.write.error", "once").ok());
  auto put = (*store)->Put(g);
  ASSERT_FALSE(put.ok());
  EXPECT_FALSE((*store)->Has(g.ContentHash()));
  EXPECT_EQ(CountFilesMatching("\\.gst$"), 0);
  // The store is not poisoned: the next Put succeeds.
  auto again = (*store)->Put(g);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_TRUE((*store)->Has(g.ContentHash()));
}

TEST_F(StoreChaosTest, FsyncErrorFailsPutWithoutPublishing) {
  auto store = GraphStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(ActivateFailpoint("store.fsync.error", "once").ok());
  auto put = (*store)->Put(SmallGraph(2));
  ASSERT_FALSE(put.ok());
  EXPECT_EQ(CountFilesMatching("\\.gst$"), 0);
}

TEST_F(StoreChaosTest, TornWriteLeavesTempInvisibleAndGcSweepsIt) {
  // A crash between fsync and rename (simulated by the rename failpoint,
  // which deliberately leaves the temp file behind) must never produce a
  // visible `.gst` entry — and `store gc` reclaims the leftover.
  auto store = GraphStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  const Graph g = SmallGraph(3);
  ASSERT_TRUE(ActivateFailpoint("store.rename.error", "once").ok());
  auto put = (*store)->Put(g);
  ASSERT_FALSE(put.ok());
  EXPECT_EQ(CountFilesMatching("\\.gst$"), 0);
  EXPECT_EQ(CountFilesMatching("tmp-"), 1);
  EXPECT_FALSE((*store)->Has(g.ContentHash()));

  auto gc = (*store)->Gc();
  ASSERT_TRUE(gc.ok());
  EXPECT_EQ(gc->removed, 1);
  EXPECT_EQ(CountFilesMatching("tmp-"), 0);

  // Recovery: the same graph publishes cleanly afterwards.
  auto again = (*store)->Put(g);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  auto got = (*store)->Get(*again);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->ContentHash(), g.ContentHash());
}

TEST_F(StoreChaosTest, MmapErrorIsUnavailableAndNeverQuarantines) {
  // Transient IO trouble must not destroy a good file: no quarantine, and
  // the entry is served normally once the fault clears.
  auto store = GraphStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  auto hash = (*store)->Put(SmallGraph(4));
  ASSERT_TRUE(hash.ok());
  ASSERT_TRUE(ActivateFailpoint("store.mmap.error", "once").ok());
  auto got = (*store)->Get(*hash);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kUnavailable)
      << got.status().ToString();
  EXPECT_EQ(CountFilesMatching("\\.corrupt$"), 0);
  EXPECT_EQ((*store)->counters().corrupt, 0u);
  auto healthy = (*store)->Get(*hash);
  ASSERT_TRUE(healthy.ok()) << healthy.status().ToString();
}

TEST_F(StoreChaosTest, EnospcFailsPutAsUnavailableAndNeverQuarantines) {
  // A full disk is a transient-environment failure: the Put comes back as
  // a typed kUnavailable — never kCorrupt, never a quarantine — and the
  // store serves normally once space exists again.
  auto store = GraphStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  const Graph g = SmallGraph(6);
  ASSERT_TRUE(ActivateFailpoint("store.write.enospc", "once").ok());
  auto put = (*store)->Put(g);
  ASSERT_FALSE(put.ok());
  EXPECT_EQ(put.status().code(), StatusCode::kUnavailable)
      << put.status().ToString();
  EXPECT_NE(put.status().ToString().find("No space left"), std::string::npos)
      << put.status().ToString();
  EXPECT_EQ(CountFilesMatching("\\.gst$"), 0);
  EXPECT_EQ(CountFilesMatching("\\.corrupt$"), 0);
  EXPECT_EQ((*store)->counters().corrupt, 0u);
  EXPECT_FALSE((*store)->Has(g.ContentHash()));
  // Space back: the same graph publishes and round-trips.
  auto again = (*store)->Put(g);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  auto got = (*store)->Get(*again);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->ContentHash(), g.ContentHash());
}

TEST_F(StoreChaosTest, InjectedVerifyCorruptQuarantinesLikeRealRot) {
  auto store = GraphStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  const Graph g = SmallGraph(5);
  auto hash = (*store)->Put(g);
  ASSERT_TRUE(hash.ok());
  ASSERT_TRUE(ActivateFailpoint("store.verify.corrupt", "once").ok());
  auto got = (*store)->Get(*hash);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kCorrupt);
  EXPECT_EQ(CountFilesMatching("\\.corrupt$"), 1);
  EXPECT_FALSE((*store)->Has(*hash));
  // Never retried in a loop: the next Get is a clean NotFound, not another
  // verification attempt against the corpse.
  auto after = (*store)->Get(*hash);
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// Daemon paths: submit-by-hash against corruption and an unusable store.

std::string TempSocketPath(const char* tag) {
  return "/tmp/ga_schaos_" + std::string(tag) + "_" + std::to_string(getpid());
}

class StoreServerChaosTest : public StoreChaosTest {
 protected:
  void StartServer(ServerOptions options) {
    socket_path_ = options.socket_path;
    auto server = Server::Create(options);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = *std::move(server);
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override {
    if (server_ != nullptr) {
      server_->Shutdown();
      server_->Wait();
    }
    if (!socket_path_.empty()) ::unlink(socket_path_.c_str());
    StoreChaosTest::TearDown();
  }

  Result<Client> Connect() {
    ClientOptions copts;
    copts.socket_path = socket_path_;
    copts.timeout_seconds = 60.0;
    return Client::Connect(copts);
  }

  static Request PutRequest(const Graph& g) {
    Request req;
    req.type = RequestType::kPutGraph;
    req.put_graph.g = ToWire(g);
    return req;
  }

  static Request ByHashRequest(uint64_t h1, uint64_t h2) {
    Request req;
    req.type = RequestType::kAlign;
    req.align.algo = "GRASP";
    req.align.assign = "JV";
    req.align.by_hash = true;
    req.align.g1_hash = h1;
    req.align.g2_hash = h2;
    return req;
  }

  static Request WireAlignRequest(const Graph& g1, const Graph& g2) {
    Request req;
    req.type = RequestType::kAlign;
    req.align.algo = "GRASP";
    req.align.assign = "JV";
    req.align.g1 = ToWire(g1);
    req.align.g2 = ToWire(g2);
    return req;
  }

  std::string socket_path_;
  std::unique_ptr<Server> server_;
};

TEST_F(StoreServerChaosTest, BitFlipThenByHashAlignIsNoGraphAndDaemonLives) {
  ServerOptions opts;
  opts.socket_path = TempSocketPath("rot");
  opts.workers = 2;
  opts.store_dir = dir_;
  StartServer(opts);

  const Graph g1 = SmallGraph(10);
  const Graph g2 = SmallGraph(11);
  auto client = Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto put1 = client->Call(PutRequest(g1));
  auto put2 = client->Call(PutRequest(g2));
  ASSERT_TRUE(put1.ok() && put2.ok());
  ASSERT_EQ(put1->code, ResponseCode::kOk);
  ASSERT_EQ(put2->code, ResponseCode::kOk);

  // Rot g1's stored bytes behind the daemon's back.
  const std::string path =
      dir_ + "/" + GraphStore::HashName(g1.ContentHash()) + ".gst";
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(150);
    f.put('\x55');
  }

  // The by-hash align gets a typed NO_GRAPH (corrupt = not held), the file
  // is quarantined aside, and the corrupt bytes are never served.
  auto rotted =
      client->Call(ByHashRequest(g1.ContentHash(), g2.ContentHash()));
  ASSERT_TRUE(rotted.ok()) << rotted.status().ToString();
  EXPECT_EQ(rotted->code, ResponseCode::kNoGraph) << rotted->message;
  EXPECT_NE(rotted->message.find("re-upload"), std::string::npos)
      << rotted->message;
  struct stat st;
  EXPECT_NE(::stat(path.c_str(), &st), 0);
  EXPECT_EQ(::stat((path + ".corrupt").c_str(), &st), 0);

  // The daemon is fully alive: wire-graph aligns still succeed, and after
  // re-upload the same by-hash request is served.
  auto wire = client->Call(WireAlignRequest(g1, g2));
  ASSERT_TRUE(wire.ok());
  EXPECT_EQ(wire->code, ResponseCode::kOk) << wire->message;
  auto reput = client->Call(PutRequest(g1));
  ASSERT_TRUE(reput.ok());
  ASSERT_EQ(reput->code, ResponseCode::kOk);
  auto healed =
      client->Call(ByHashRequest(g1.ContentHash(), g2.ContentHash()));
  ASSERT_TRUE(healed.ok());
  EXPECT_EQ(healed->code, ResponseCode::kOk) << healed->message;
}

TEST_F(StoreServerChaosTest, UnusableStoreDirDegradesToWirePath) {
  // Point --store-dir at a path under a regular *file*: the store can
  // never open. The daemon must start anyway, serve wire-graph aligns,
  // and answer by-hash requests with a typed NO_GRAPH.
  const std::string blocker = dir_ + "/blocker";
  { std::ofstream f(blocker); f << "i am a file"; }
  ServerOptions opts;
  opts.socket_path = TempSocketPath("nodir");
  opts.workers = 2;
  opts.store_dir = blocker + "/store";
  StartServer(opts);

  const Graph g1 = SmallGraph(12);
  const Graph g2 = SmallGraph(13);
  auto client = Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  auto wire = client->Call(WireAlignRequest(g1, g2));
  ASSERT_TRUE(wire.ok()) << wire.status().ToString();
  EXPECT_EQ(wire->code, ResponseCode::kOk) << wire->message;

  auto by_hash =
      client->Call(ByHashRequest(g1.ContentHash(), g2.ContentHash()));
  ASSERT_TRUE(by_hash.ok());
  EXPECT_EQ(by_hash->code, ResponseCode::kNoGraph) << by_hash->message;

  auto put = client->Call(PutRequest(g1));
  ASSERT_TRUE(put.ok());
  EXPECT_EQ(put->code, ResponseCode::kError) << put->message;
  EXPECT_NE(put->message.find("store disabled"), std::string::npos)
      << put->message;
}

TEST_F(StoreServerChaosTest, ByHashHitsShareTheResultCacheWithWirePath) {
  // The cache key is content-addressed, so a by-hash align and a wire
  // align of the same pair are the same entry: upload + by-hash compute
  // once, then the wire-path request is a cache hit.
  ServerOptions opts;
  opts.socket_path = TempSocketPath("cache");
  opts.workers = 2;
  opts.store_dir = dir_;
  StartServer(opts);

  const Graph g1 = SmallGraph(14);
  const Graph g2 = SmallGraph(15);
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  ASSERT_EQ(client->Call(PutRequest(g1))->code, ResponseCode::kOk);
  ASSERT_EQ(client->Call(PutRequest(g2))->code, ResponseCode::kOk);

  auto first =
      client->Call(ByHashRequest(g1.ContentHash(), g2.ContentHash()));
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first->code, ResponseCode::kOk) << first->message;
  EXPECT_FALSE(first->cache_hit);

  auto second = client->Call(WireAlignRequest(g1, g2));
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(second->code, ResponseCode::kOk);
  EXPECT_TRUE(second->cache_hit);
}

TEST_F(StoreServerChaosTest, CacheLogEnospcDegradesDurabilityNotService) {
  // Disk-full on the durable cache log: every append is dropped and
  // counted, the in-memory cache keeps serving hits, alignments keep
  // succeeding, and nothing is ever quarantined or corrupted.
  ServerOptions opts;
  opts.socket_path = TempSocketPath("enospc");
  opts.workers = 2;
  opts.cache_dir = dir_ + "/cache";
  StartServer(opts);

  ASSERT_TRUE(ActivateFailpoint("server.cache.append.enospc", "error").ok());
  const Graph g1 = SmallGraph(20);
  const Graph g2 = SmallGraph(21);
  auto client = Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto first = client->Call(WireAlignRequest(g1, g2));
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->code, ResponseCode::kOk) << first->message;
  EXPECT_FALSE(first->cache_hit);
  // Durability is lost, service is not: the in-memory entry still hits.
  auto second = client->Call(WireAlignRequest(g1, g2));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->code, ResponseCode::kOk);
  EXPECT_TRUE(second->cache_hit);

  Request stats_req;
  stats_req.type = RequestType::kServerStats;
  auto stats_resp = client->Call(stats_req);
  ASSERT_TRUE(stats_resp.ok());
  ASSERT_EQ(stats_resp->code, ResponseCode::kOk);
  auto stats = DecodeServerStatsResult(stats_resp->body);
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats->cache_append_errors, 1u);

  // The fault clears: appends work again and the daemon never noticed at
  // the service level.
  DeactivateAllFailpoints();
  auto third = client->Call(WireAlignRequest(g2, g1));
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third->code, ResponseCode::kOk) << third->message;
}

}  // namespace
}  // namespace graphalign
