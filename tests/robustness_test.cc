// Failure injection: every algorithm must either produce a valid result or
// return a clean Status on degenerate inputs — never crash, hang, or emit
// NaNs. Parameterized over all nine algorithms x pathological graph shapes.
#include <cmath>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "align/aligner.h"
#include "common/random.h"
#include "graph/generators.h"
#include "metrics/metrics.h"

namespace graphalign {
namespace {

Graph MustGraph(int n, const std::vector<Edge>& edges) {
  auto g = Graph::FromEdges(n, edges);
  GA_CHECK(g.ok());
  return *std::move(g);
}

// Pathological shapes: names map to graph builders.
Graph MakeShape(const std::string& shape) {
  Rng rng(7);
  if (shape == "single_edge") return MustGraph(2, {{0, 1}});
  if (shape == "triangle") return MustGraph(3, {{0, 1}, {1, 2}, {0, 2}});
  if (shape == "star") {
    std::vector<Edge> e;
    for (int i = 1; i < 12; ++i) e.push_back({0, i});
    return MustGraph(12, e);
  }
  if (shape == "path") {
    std::vector<Edge> e;
    for (int i = 0; i + 1 < 12; ++i) e.push_back({i, i + 1});
    return MustGraph(12, e);
  }
  if (shape == "complete") {
    std::vector<Edge> e;
    for (int i = 0; i < 10; ++i) {
      for (int j = i + 1; j < 10; ++j) e.push_back({i, j});
    }
    return MustGraph(10, e);
  }
  if (shape == "isolated_nodes") {
    // Half the nodes have no edges at all.
    return MustGraph(16, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}});
  }
  if (shape == "empty") return MustGraph(0, {});
  if (shape == "single_node") return MustGraph(1, {});
  if (shape == "all_isolated") return MustGraph(8, {});
  if (shape == "two_components") {
    return MustGraph(12, {{0, 1}, {1, 2}, {2, 0}, {6, 7}, {7, 8}, {8, 9},
                          {9, 6}});
  }
  GA_CHECK_MSG(false, "unknown shape " + shape);
  return Graph();
}

class RobustnessTest
    : public testing::TestWithParam<std::tuple<std::string, std::string>> {};

INSTANTIATE_TEST_SUITE_P(
    Shapes, RobustnessTest,
    testing::Combine(testing::ValuesIn(AllAlignerNames()),
                     testing::Values("single_edge", "triangle", "star", "path",
                                     "complete", "isolated_nodes",
                                     "two_components", "empty", "single_node",
                                     "all_isolated")),
    [](const auto& info) {
      std::string n = std::get<0>(info.param) + "_" + std::get<1>(info.param);
      std::replace(n.begin(), n.end(), '-', '_');
      return n;
    });

TEST_P(RobustnessTest, NoCrashNoNanOnDegenerateShapes) {
  const auto& [algo, shape] = GetParam();
  Graph g = MakeShape(shape);
  auto aligner = MakeAligner(algo);
  ASSERT_TRUE(aligner.ok());
  auto sim = (*aligner)->ComputeSimilarity(g, g);
  if (!sim.ok()) {
    // A clean error is acceptable on degenerate inputs.
    SUCCEED() << algo << " on " << shape << ": " << sim.status().ToString();
    return;
  }
  for (int i = 0; i < sim->rows(); ++i) {
    for (int j = 0; j < sim->cols(); ++j) {
      ASSERT_TRUE(std::isfinite((*sim)(i, j)))
          << algo << " emitted non-finite similarity on " << shape;
    }
  }
  // The alignment pipeline must complete too.
  auto align = ExtractAlignment(*sim, AssignmentMethod::kJonkerVolgenant);
  ASSERT_TRUE(align.ok());
  QualityReport q = EvaluateAlignment(g, g, *align, *align);
  EXPECT_GE(q.mnc, 0.0);
  EXPECT_LE(q.mnc, 1.0);
}

TEST_P(RobustnessTest, MismatchedSizesHandled) {
  const auto& [algo, shape] = GetParam();
  if (shape != "star") return;  // One representative per algorithm suffices.
  Graph small = MakeShape("triangle");
  Graph big = MakeShape("complete");
  auto aligner = MakeAligner(algo);
  ASSERT_TRUE(aligner.ok());
  auto sim = (*aligner)->ComputeSimilarity(small, big);
  if (!sim.ok()) {
    SUCCEED() << algo << ": " << sim.status().ToString();
    return;
  }
  EXPECT_EQ(sim->rows(), small.num_nodes());
  EXPECT_EQ(sim->cols(), big.num_nodes());
  auto align = ExtractAlignment(*sim, AssignmentMethod::kJonkerVolgenant);
  ASSERT_TRUE(align.ok());
  int matched = 0;
  for (int v : *align) matched += (v >= 0);
  EXPECT_EQ(matched, small.num_nodes());
}

}  // namespace
}  // namespace graphalign
