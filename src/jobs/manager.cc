#include "jobs/manager.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/wire.h"

namespace graphalign {

namespace {

// Journal event types. The payload layouts are pinned by DESIGN.md §17 and
// the replay tests; changing them breaks existing journals.
constexpr uint8_t kEventSubmit = 0;
constexpr uint8_t kEventState = 1;

// Decode bounds. The spec/result blobs are capped by the journal's own
// payload limit; the small strings get tight caps of their own.
constexpr size_t kMaxIdemKeyLen = 256;
constexpr size_t kMaxEventMessageLen = 4096;

uint64_t WallClockMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

const char* JobStateName(JobState state) {
  switch (state) {
    case JobState::kAccepted:
      return "ACCEPTED";
    case JobState::kRunning:
      return "RUNNING";
    case JobState::kDone:
      return "DONE";
    case JobState::kFailed:
      return "FAILED";
    case JobState::kQuarantined:
      return "QUARANTINED";
    case JobState::kCancelled:
      return "CANCELLED";
  }
  return "UNKNOWN";
}

uint64_t JobContentId(std::string_view spec_bytes) {
  uint64_t h = 14695981039346656037ull;  // FNV-1a offset basis.
  for (const char c : spec_bytes) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;  // FNV-1a prime.
  }
  return h == 0 ? 1 : h;  // 0 is reserved for "no job".
}

JobManager::JobManager(JobManagerOptions options)
    : options_(std::move(options)) {}

JobManager::~JobManager() { Stop(); }

std::string JobManager::EncodeSubmitEvent(const JobRecord& r) const {
  ByteWriter w;
  w.U8(kEventSubmit);
  w.U64(r.job_id);
  w.Str(r.idem_key);
  w.Str(r.spec_bytes);
  w.U64(r.submitted_unix_ms);
  w.U32(r.max_attempts);
  return w.Take();
}

std::string JobManager::EncodeStateEvent(const JobRecord& r) const {
  ByteWriter w;
  w.U8(kEventState);
  w.U64(r.job_id);
  w.U32(static_cast<uint32_t>(r.state));
  w.U32(r.attempts);
  w.U64(r.updated_unix_ms);
  w.U32(r.terminal_code);
  w.Str(r.message);
  // Result bytes travel only on the DONE transition; every other state
  // writes an empty blob (and replay clears any stale result).
  w.Str(r.state == JobState::kDone ? r.result_bytes : std::string_view());
  return w.Take();
}

void JobManager::ApplyEvent(std::string_view payload) {
  ByteReader r(payload);
  uint8_t type = 0;
  if (!r.U8(&type)) {
    ++replay_bad_events_;
    return;
  }
  if (type == kEventSubmit) {
    uint64_t job_id = 0, submitted_ms = 0;
    uint32_t max_attempts = 0;
    std::string idem_key, spec;
    if (!r.U64(&job_id) || !r.Str(&idem_key, kMaxIdemKeyLen) ||
        !r.Str(&spec, kMaxJournalPayload) || !r.U64(&submitted_ms) ||
        !r.U32(&max_attempts) || !r.AtEnd() || job_id == 0) {
      ++replay_bad_events_;
      return;
    }
    // A submit for an existing id is a fresh cycle (resubmission after
    // FAILED/CANCELLED): the record resets exactly as the live path did.
    JobRecord& rec = jobs_[job_id];
    rec.job_id = job_id;
    rec.idem_key = std::move(idem_key);
    rec.spec_bytes = std::move(spec);
    rec.state = JobState::kAccepted;
    rec.attempts = 0;
    rec.max_attempts = max_attempts == 0 ? 1 : max_attempts;
    rec.submitted_unix_ms = submitted_ms;
    rec.updated_unix_ms = submitted_ms;
    rec.terminal_code = 0;
    rec.message.clear();
    rec.result_bytes.clear();
    if (!rec.idem_key.empty()) idem_[rec.idem_key] = job_id;
    return;
  }
  if (type == kEventState) {
    uint64_t job_id = 0, ts_ms = 0;
    uint32_t state = 0, attempts = 0, terminal_code = 0;
    std::string message, result;
    if (!r.U64(&job_id) || !r.U32(&state) || !r.U32(&attempts) ||
        !r.U64(&ts_ms) || !r.U32(&terminal_code) ||
        !r.Str(&message, kMaxEventMessageLen) ||
        !r.Str(&result, kMaxJournalPayload) || !r.AtEnd() ||
        state > static_cast<uint32_t>(JobState::kCancelled)) {
      ++replay_bad_events_;
      return;
    }
    auto it = jobs_.find(job_id);
    if (it == jobs_.end()) {
      // A state for a job whose submit record was lost (CRC-skipped): the
      // spec is gone, so the job cannot be reconstructed. Count and move on.
      ++replay_bad_events_;
      return;
    }
    JobRecord& rec = it->second;
    rec.state = static_cast<JobState>(state);
    rec.attempts = attempts;
    rec.updated_unix_ms = ts_ms;
    rec.terminal_code = terminal_code;
    rec.message = std::move(message);
    rec.result_bytes = std::move(result);
    return;
  }
  ++replay_bad_events_;
}

Status JobManager::JournalState(const JobRecord& r) {
  return journal_->Append(EncodeStateEvent(r));
}

Result<std::unique_ptr<JobManager>> JobManager::Open(
    const JobManagerOptions& options, uint64_t now_ms) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("job manager: directory is required");
  }
  std::unique_ptr<JobManager> mgr(new JobManager(options));
  JobJournal::ReplayStats replay;
  auto journal = JobJournal::Open(
      options.dir,
      [&mgr](std::string_view payload) { mgr->ApplyEvent(payload); },
      &replay);
  if (!journal.ok()) return journal.status();
  mgr->journal_ = std::move(*journal);
  mgr->replay_stats_ = replay;

  // Recovery: re-enqueue interrupted work, journaling each decision so a
  // second crash replays the *recovered* state, not the original one.
  for (auto& [id, rec] : mgr->jobs_) {
    if (rec.state == JobState::kAccepted) {
      mgr->queue_.push_back(id);
    } else if (rec.state == JobState::kRunning) {
      rec.updated_unix_ms = now_ms;
      if (rec.attempts < rec.max_attempts) {
        rec.state = JobState::kAccepted;
        rec.message = "recovered after restart";
        (void)mgr->JournalState(rec);
        mgr->queue_.push_back(id);
        ++mgr->recovered_;
      } else {
        rec.state = JobState::kFailed;
        rec.terminal_code = options.exhausted_terminal_code;
        rec.message = "attempts exhausted (" +
                      std::to_string(rec.attempts) + "/" +
                      std::to_string(rec.max_attempts) +
                      "); last attempt did not survive a restart";
        (void)mgr->JournalState(rec);
        ++mgr->failed_;
      }
    }
  }
  return mgr;
}

Result<JobManager::SubmitOutcome> JobManager::Submit(
    const std::string& idem_key, std::string spec_bytes, uint64_t now_ms) {
  if (spec_bytes.empty()) {
    return Status::InvalidArgument("job submit: empty spec");
  }
  if (idem_key.size() > kMaxIdemKeyLen) {
    return Status::InvalidArgument("job submit: idempotency key too long");
  }
  const uint64_t job_id = JobContentId(spec_bytes);
  std::lock_guard<std::mutex> lock(mu_);
  if (!idem_key.empty()) {
    auto bound = idem_.find(idem_key);
    if (bound != idem_.end() && bound->second != job_id) {
      return Status::FailedPrecondition(
          "idempotency key '" + idem_key +
          "' is already bound to different content (job " +
          std::to_string(bound->second) + ")");
    }
  }
  auto it = jobs_.find(job_id);
  if (it != jobs_.end() && it->second.state != JobState::kFailed &&
      it->second.state != JobState::kCancelled) {
    // Dedupe: the job exists and is either in flight or finished usefully.
    // DONE/QUARANTINED verdicts are served again instead of re-executing.
    ++deduped_;
    if (!idem_key.empty()) idem_[idem_key] = job_id;
    return SubmitOutcome{it->second, /*existing=*/true};
  }

  // Fresh submission (or a fresh attempt cycle after FAILED/CANCELLED).
  JobRecord rec;
  rec.job_id = job_id;
  rec.idem_key = idem_key;
  rec.spec_bytes = std::move(spec_bytes);
  rec.state = JobState::kAccepted;
  rec.attempts = 0;
  rec.max_attempts = options_.max_attempts == 0 ? 1 : options_.max_attempts;
  rec.submitted_unix_ms = now_ms;
  rec.updated_unix_ms = now_ms;
  // Durability IS the contract: a job that cannot be journaled is refused
  // outright (kUnavailable), never half-accepted into memory only.
  GA_RETURN_IF_ERROR(journal_->Append(EncodeSubmitEvent(rec)));
  JobRecord& stored = jobs_[job_id];
  stored = std::move(rec);
  if (!idem_key.empty()) idem_[idem_key] = job_id;
  queue_.push_back(job_id);
  ++submitted_;
  cv_.notify_one();
  return SubmitOutcome{stored, /*existing=*/false};
}

Result<JobRecord> JobManager::Get(uint64_t job_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    return Status::NotFound("no job " + std::to_string(job_id));
  }
  return it->second;
}

std::vector<JobRecord> JobManager::List() const {
  std::vector<JobRecord> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(jobs_.size());
    for (const auto& [id, rec] : jobs_) {
      JobRecord r = rec;
      r.spec_bytes.clear();
      r.result_bytes.clear();
      out.push_back(std::move(r));
    }
  }
  std::sort(out.begin(), out.end(), [](const JobRecord& a, const JobRecord& b) {
    if (a.submitted_unix_ms != b.submitted_unix_ms) {
      return a.submitted_unix_ms < b.submitted_unix_ms;
    }
    return a.job_id < b.job_id;
  });
  return out;
}

bool JobManager::ClaimNext(JobRecord* out,
                           std::shared_ptr<std::atomic<bool>>* cancel) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [this] { return stopped_ || !queue_.empty(); });
    if (stopped_) return false;
    const uint64_t job_id = queue_.front();
    queue_.pop_front();
    auto it = jobs_.find(job_id);
    // A queued id can be stale: the job was cancelled or GC'd while it
    // waited. Skip it and keep waiting.
    if (it == jobs_.end() || it->second.state != JobState::kAccepted) {
      continue;
    }
    JobRecord& rec = it->second;
    rec.state = JobState::kRunning;
    rec.attempts += 1;
    rec.updated_unix_ms = WallClockMs();
    rec.message.clear();
    // Journal the claim before running. If the append fails the execution
    // proceeds anyway — the job was durably ACCEPTED, so a crash now only
    // costs one extra attempt, not the at-most-N bound by more than one.
    (void)JournalState(rec);
    auto flag = std::make_shared<std::atomic<bool>>(false);
    cancels_[job_id] = flag;
    ++executions_;
    *out = rec;
    if (cancel != nullptr) *cancel = std::move(flag);
    return true;
  }
}

Status JobManager::CompleteDone(uint64_t job_id, std::string result_bytes,
                                uint64_t now_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end() || it->second.state != JobState::kRunning) {
    return Status::Ok();  // Cancel (or GC) won the race; discard the result.
  }
  JobRecord& rec = it->second;
  rec.state = JobState::kDone;
  rec.updated_unix_ms = now_ms;
  rec.terminal_code = 0;
  rec.message.clear();
  rec.result_bytes = std::move(result_bytes);
  ++done_;
  cancels_.erase(job_id);
  return JournalState(rec);
}

Status JobManager::CompleteFailed(uint64_t job_id, uint32_t terminal_code,
                                  const std::string& message, bool quarantined,
                                  uint64_t now_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end() || it->second.state != JobState::kRunning) {
    return Status::Ok();
  }
  JobRecord& rec = it->second;
  rec.state = quarantined ? JobState::kQuarantined : JobState::kFailed;
  rec.updated_unix_ms = now_ms;
  rec.terminal_code = terminal_code;
  rec.message = message;
  rec.result_bytes.clear();
  ++failed_;
  cancels_.erase(job_id);
  return JournalState(rec);
}

Status JobManager::CompleteRetryable(uint64_t job_id,
                                     const std::string& message,
                                     uint64_t now_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end() || it->second.state != JobState::kRunning) {
    return Status::Ok();
  }
  JobRecord& rec = it->second;
  rec.updated_unix_ms = now_ms;
  cancels_.erase(job_id);
  if (rec.attempts >= rec.max_attempts) {
    rec.state = JobState::kFailed;
    rec.terminal_code = options_.exhausted_terminal_code;
    rec.message = message + " (attempts exhausted, " +
                  std::to_string(rec.attempts) + "/" +
                  std::to_string(rec.max_attempts) + ")";
    ++failed_;
    return JournalState(rec);
  }
  rec.state = JobState::kAccepted;
  rec.message = message + " (will retry, attempt " +
                std::to_string(rec.attempts) + "/" +
                std::to_string(rec.max_attempts) + " failed)";
  const Status journaled = JournalState(rec);
  queue_.push_back(job_id);
  cv_.notify_one();
  return journaled;
}

Result<JobRecord> JobManager::Cancel(uint64_t job_id, uint64_t now_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    return Status::NotFound("no job " + std::to_string(job_id));
  }
  JobRecord& rec = it->second;
  if (JobStateTerminal(rec.state)) {
    return Status::FailedPrecondition(
        "job " + std::to_string(job_id) + " is already " +
        JobStateName(rec.state) + "; cancel applies to ACCEPTED/RUNNING jobs");
  }
  if (rec.state == JobState::kAccepted) {
    queue_.erase(std::remove(queue_.begin(), queue_.end(), job_id),
                 queue_.end());
  } else {  // RUNNING: the runner's poll sees the flag and kills the child.
    auto flag = cancels_.find(job_id);
    if (flag != cancels_.end()) flag->second->store(true);
  }
  rec.state = JobState::kCancelled;
  rec.updated_unix_ms = now_ms;
  rec.message = "cancelled by client";
  rec.result_bytes.clear();
  ++cancelled_;
  cancels_.erase(job_id);
  (void)JournalState(rec);
  return rec;
}

Status JobManager::Gc(uint64_t now_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t ttl_ms = options_.ttl_seconds * 1000;
  uint64_t expired = 0;
  for (auto it = jobs_.begin(); it != jobs_.end();) {
    const JobRecord& rec = it->second;
    if (JobStateTerminal(rec.state) &&
        rec.updated_unix_ms + ttl_ms <= now_ms) {
      if (!rec.idem_key.empty()) {
        auto bound = idem_.find(rec.idem_key);
        if (bound != idem_.end() && bound->second == rec.job_id) {
          idem_.erase(bound);
        }
      }
      it = jobs_.erase(it);
      ++expired;
    } else {
      ++it;
    }
  }
  gced_ += expired;
  if (expired == 0 && journal_->log_bytes() <= options_.compact_bytes) {
    return Status::Ok();
  }
  // Rewrite the journal to exactly the live jobs: one submit event each,
  // plus one state event for any job that has moved past a fresh ACCEPTED.
  std::vector<std::string> live;
  live.reserve(jobs_.size() * 2);
  for (const auto& [id, rec] : jobs_) {
    live.push_back(EncodeSubmitEvent(rec));
    if (rec.state != JobState::kAccepted || rec.attempts > 0) {
      live.push_back(EncodeStateEvent(rec));
    }
  }
  return journal_->Compact(live);
}

Status JobManager::Seal() { return journal_->Sync(); }

void JobManager::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopped_ = true;
  }
  cv_.notify_all();
}

JobManagerStats JobManager::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  JobManagerStats s;
  s.submitted = submitted_;
  s.deduped = deduped_;
  s.done = done_;
  s.failed = failed_;
  s.cancelled = cancelled_;
  s.executions = executions_;
  s.recovered = recovered_;
  for (const auto& [id, rec] : jobs_) {
    if (!JobStateTerminal(rec.state)) ++s.pending;
  }
  s.gced = gced_;
  s.journal_bytes = journal_->log_bytes();
  s.journal_append_errors = journal_->append_errors();
  s.replay_events = replay_stats_.replayed;
  s.replay_crc_skipped = replay_stats_.crc_skipped;
  s.replay_truncated_bytes = replay_stats_.truncated_bytes;
  return s;
}

}  // namespace graphalign
