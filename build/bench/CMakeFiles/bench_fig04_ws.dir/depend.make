# Empty dependencies file for bench_fig04_ws.
# This may be replaced when dependencies are built.
